#![forbid(unsafe_code)]
//! # tcudb-magiq
//!
//! The **MAGiQ baseline** of §5.5: a graph query engine that stores graphs
//! as sparse matrices and executes queries as GraphBLAS-style sparse linear
//! algebra on conventional CUDA cores.
//!
//! The paper compares only the *core join + aggregation* latency of the
//! PageRank Q3 kernel across MonetDB, YDB, MAGiQ and TCUDB (Figure 13);
//! this crate provides exactly that: a CSR-based PageRank step whose
//! simulated cost is charged to the CUDA cores (SpMV), plus the TCU-SpMM
//! variant used to show what MAGiQ would gain from tensor cores.

use tcudb_device::{CostModel, DeviceProfile, ExecutionTimeline, Phase};
use tcudb_tensor::{spmm, CsrMatrix, GemmPrecision};
use tcudb_types::{TcuError, TcuResult};

/// A directed graph stored as a CSR adjacency matrix (edge `src → dst`).
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: CsrMatrix,
    out_degree: Vec<usize>,
}

impl Graph {
    /// Build a graph from an edge list over nodes `0..num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> TcuResult<Graph> {
        for &(s, d) in edges {
            if s >= num_nodes || d >= num_nodes {
                return Err(TcuError::InvalidArgument(format!(
                    "edge ({s},{d}) outside graph of {num_nodes} nodes"
                )));
            }
        }
        let triplets: Vec<(usize, usize, f32)> = edges.iter().map(|&(s, d)| (s, d, 1.0)).collect();
        let adjacency = CsrMatrix::from_triplets(num_nodes, num_nodes, &triplets)?;
        let mut out_degree = vec![0usize; num_nodes];
        for &(s, _) in edges {
            out_degree[s] += 1;
        }
        Ok(Graph {
            adjacency,
            out_degree,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Out-degree of each node.
    pub fn out_degrees(&self) -> &[usize] {
        &self.out_degree
    }

    /// The adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Density of the adjacency matrix.
    pub fn density(&self) -> f64 {
        self.adjacency.density()
    }
}

/// Result of one PageRank iteration (the PR Q3 kernel).
#[derive(Debug, Clone)]
pub struct PageRankStep {
    /// Updated rank vector.
    pub ranks: Vec<f64>,
    /// Simulated timing of the core join + aggregation.
    pub timeline: ExecutionTimeline,
}

/// The MAGiQ-style sparse linear-algebra engine.
#[derive(Debug, Clone)]
pub struct MagiqEngine {
    cost: CostModel,
    /// Damping factor α (0.85 in the paper's queries).
    pub alpha: f64,
}

impl MagiqEngine {
    /// Create an engine for a device.
    pub fn new(device: DeviceProfile) -> MagiqEngine {
        MagiqEngine {
            cost: CostModel::new(device),
            alpha: 0.85,
        }
    }

    /// Run one PageRank iteration (PR Q3) as a sparse matrix-vector product
    /// on conventional CUDA cores — what MAGiQ's GraphBLAS backend does.
    pub fn pagerank_step(&self, graph: &Graph, ranks: &[f64]) -> TcuResult<PageRankStep> {
        let n = graph.num_nodes();
        if ranks.len() != n {
            return Err(TcuError::InvalidArgument(format!(
                "rank vector has {} entries, graph has {n} nodes",
                ranks.len()
            )));
        }
        // contribution[v] = α · rank[v] / out_degree[v]
        let contrib: Vec<f32> = (0..n)
            .map(|v| {
                let d = graph.out_degree[v];
                if d == 0 {
                    0.0
                } else {
                    (self.alpha * ranks[v] / d as f64) as f32
                }
            })
            .collect();
        // new_rank = Aᵀ · contrib + (1−α)/N
        let at = graph.adjacency.transpose();
        let spmv = at.spmv(&contrib)?;
        let base = (1.0 - self.alpha) / n as f64;
        let new_ranks: Vec<f64> = spmv.iter().map(|&x| x as f64 + base).collect();

        // Cost: SpMV on CUDA cores = 2·nnz FLOPs at CUDA throughput, bound
        // below by reading the CSR arrays from device memory, plus the
        // sparse-matrix retrieval overhead the paper notes for MAGiQ.
        let nnz = graph.num_edges() as f64;
        let flops = 2.0 * nnz;
        let compute = self.cost.cuda_flops_seconds(flops);
        let bandwidth = self
            .cost
            .device_mem_seconds(graph.adjacency.byte_size() as f64 + n as f64 * 8.0);
        let mut timeline = ExecutionTimeline::new();
        timeline.record_detail(
            Phase::TcuKernel,
            format!(
                "GraphBLAS SpMV over {} edges (CUDA cores)",
                graph.num_edges()
            ),
            compute.max(bandwidth),
        );
        timeline.record_detail(
            Phase::GroupByAggregation,
            "rank accumulation",
            self.cost.gpu_aggregation_seconds(n),
        );
        Ok(PageRankStep {
            ranks: new_ranks,
            timeline,
        })
    }

    /// The same PageRank step executed with the TCU-SpMM kernel — the
    /// "graph databases can also be more efficient if their backends
    /// leverage TCUs" observation of §5.5.
    pub fn pagerank_step_tcu(&self, graph: &Graph, ranks: &[f64]) -> TcuResult<PageRankStep> {
        let n = graph.num_nodes();
        if ranks.len() != n {
            return Err(TcuError::InvalidArgument(
                "rank vector length mismatch".into(),
            ));
        }
        let contrib: Vec<f32> = (0..n)
            .map(|v| {
                let d = graph.out_degree[v];
                if d == 0 {
                    0.0
                } else {
                    (self.alpha * ranks[v] / d as f64) as f32
                }
            })
            .collect();
        // Treat the contribution vector as a 1×n sparse matrix and multiply
        // with the adjacency: result = contrib × A (1×n).
        let triplets: Vec<(usize, usize, f32)> = contrib
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (0usize, i, v))
            .collect();
        let contrib_m = CsrMatrix::from_triplets(1, n, &triplets)?;
        let at = graph.adjacency.transpose();
        let (result, stats) = spmm::tcu_spmm(&contrib_m, &at, GemmPrecision::Half)?;
        let base = (1.0 - self.alpha) / n as f64;
        let new_ranks: Vec<f64> = (0..n).map(|j| result.get(0, j) as f64 + base).collect();

        let mut timeline = ExecutionTimeline::new();
        timeline.record_detail(
            Phase::TcuKernel,
            format!(
                "TCU-SpMM PageRank step ({} tiles processed)",
                stats.tiles_processed
            ),
            self.cost
                .tcu_spmm_seconds(&stats, tcudb_types::Precision::Half),
        );
        Ok(PageRankStep {
            ranks: new_ranks,
            timeline,
        })
    }

    /// Latency of the core join+aggregation of PR Q3 (Figure 13's metric).
    pub fn core_join_agg_seconds(&self, graph: &Graph) -> f64 {
        let ranks = vec![1.0 / graph.num_nodes().max(1) as f64; graph.num_nodes()];
        self.pagerank_step(graph, &ranks)
            .map(|s| s.timeline.total_seconds())
            .unwrap_or(f64::INFINITY)
    }
}

/// Run full PageRank to convergence (or `max_iters`) with the CUDA-core
/// backend; returns the final rank vector and the number of iterations.
pub fn pagerank(
    engine: &MagiqEngine,
    graph: &Graph,
    max_iters: usize,
    tolerance: f64,
) -> TcuResult<(Vec<f64>, usize)> {
    let n = graph.num_nodes();
    let mut ranks = vec![1.0 / n.max(1) as f64; n];
    for iter in 0..max_iters {
        let step = engine.pagerank_step(graph, &ranks)?;
        let delta: f64 = step
            .ranks
            .iter()
            .zip(&ranks)
            .map(|(a, b)| (a - b).abs())
            .sum();
        ranks = step.ranks;
        if delta < tolerance {
            return Ok((ranks, iter + 1));
        }
    }
    Ok((ranks, max_iters))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn graph_construction_and_stats() {
        let g = ring(8);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degrees(), &[1; 8]);
        assert!((g.density() - 1.0 / 8.0).abs() < 1e-9);
        assert!(Graph::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn pagerank_on_ring_is_uniform() {
        let g = ring(16);
        let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
        let (ranks, iters) = pagerank(&engine, &g, 100, 1e-10).unwrap();
        assert!(iters <= 100);
        let expected = 1.0 / 16.0;
        for r in ranks {
            assert!((r - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn cuda_and_tcu_steps_agree() {
        let edges = vec![(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (2, 3)];
        let g = Graph::from_edges(4, &edges).unwrap();
        let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
        let ranks = vec![0.25; 4];
        let cuda = engine.pagerank_step(&g, &ranks).unwrap();
        let tcu = engine.pagerank_step_tcu(&g, &ranks).unwrap();
        for (a, b) in cuda.ranks.iter().zip(&tcu.ranks) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn core_latency_grows_with_graph_size() {
        let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
        let small = engine.core_join_agg_seconds(&ring(256));
        let large = engine.core_join_agg_seconds(&ring(16384));
        assert!(large >= small);
    }

    #[test]
    fn rank_vector_length_is_validated() {
        let g = ring(4);
        let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
        assert!(engine.pagerank_step(&g, &[0.5; 3]).is_err());
        assert!(engine.pagerank_step_tcu(&g, &[0.5; 3]).is_err());
    }

    #[test]
    fn dangling_nodes_do_not_panic() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let engine = MagiqEngine::new(DeviceProfile::rtx_3090());
        let step = engine.pagerank_step(&g, &[1.0 / 3.0; 3]).unwrap();
        assert_eq!(step.ranks.len(), 3);
    }
}
