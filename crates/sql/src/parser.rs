//! Recursive-descent parser for the supported SQL dialect.

use crate::ast::{
    AggFunc, BinOp, ColumnRef, Expr, OrderByItem, SelectItem, SelectStatement, TableRef,
};
use crate::token::{tokenize, Token};
use tcudb_types::{TcuError, TcuResult, Value};

/// Parse a single SELECT statement.
pub fn parse(sql: &str) -> TcuResult<SelectStatement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_select()?;
    p.accept(&Token::Semicolon);
    if !p.at_end() {
        return Err(TcuError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.keyword().as_deref() == Some(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> TcuResult<()> {
        if self.accept_keyword(kw) {
            Ok(())
        } else {
            Err(TcuError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, token: &Token) -> TcuResult<()> {
        if self.accept(token) {
            Ok(())
        } else {
            Err(TcuError::Parse(format!(
                "expected {token:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> TcuResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(TcuError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self) -> TcuResult<SelectStatement> {
        self.expect_keyword("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }

        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.parse_table_ref()?);
            if !self.accept(&Token::Comma) {
                break;
            }
        }

        let where_clause = if self.accept_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.accept_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.accept_keyword("DESC") {
                    false
                } else {
                    self.accept_keyword("ASC");
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.accept_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(TcuError::Parse(format!(
                        "expected integer after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> TcuResult<SelectItem> {
        let expr = self.parse_expr()?;
        let alias = if self.accept_keyword("AS") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_table_ref(&mut self) -> TcuResult<TableRef> {
        let name = self.expect_ident()?;
        // An identifier immediately following (that is not a clause
        // keyword) is an alias: `FROM lineorder lo`.
        let alias = match self.peek() {
            Some(Token::Ident(s)) => {
                let upper = s.to_ascii_uppercase();
                if [
                    "WHERE", "GROUP", "ORDER", "LIMIT", "AS", "ON", "JOIN", "INNER",
                ]
                .contains(&upper.as_str())
                {
                    if upper == "AS" {
                        self.pos += 1;
                        Some(self.expect_ident()?)
                    } else {
                        None
                    }
                } else {
                    Some(self.expect_ident()?)
                }
            }
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    // Expression grammar (lowest to highest precedence):
    //   expr        := or_expr
    //   or_expr     := and_expr (OR and_expr)*
    //   and_expr    := not_expr (AND not_expr)*
    //   not_expr    := comparison
    //   comparison  := additive ((=|<>|<|<=|>|>=) additive | BETWEEN additive AND additive)?
    //   additive    := multiplicative ((+|-) multiplicative)*
    //   multiplicative := unary ((*|/) unary)*
    //   unary       := (-)? primary
    //   primary     := literal | aggregate | column | '(' expr ')'
    fn parse_expr(&mut self) -> TcuResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> TcuResult<Expr> {
        let mut left = self.parse_and()?;
        while self.accept_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> TcuResult<Expr> {
        let mut left = self.parse_comparison()?;
        while self.accept_keyword("AND") {
            let right = self.parse_comparison()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> TcuResult<Expr> {
        let left = self.parse_additive()?;
        if self.accept_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> TcuResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> TcuResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> TcuResult<Expr> {
        if self.accept(&Token::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::binary(
                Expr::Literal(Value::Int(0)),
                BinOp::Sub,
                inner,
            ));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> TcuResult<Expr> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::String(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                // Aggregate call?
                if let Some(func) = AggFunc::from_name(&name) {
                    if self.accept(&Token::LParen) {
                        // COUNT(*) has a star argument.
                        let arg = if self.accept(&Token::Star) {
                            Expr::Literal(Value::Int(1))
                        } else {
                            self.parse_expr()?
                        };
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Box::new(arg),
                        });
                    }
                }
                // Qualified column?
                if self.accept(&Token::Dot) {
                    let column = self.expect_ident()?;
                    return Ok(Expr::Column(ColumnRef::qualified(name, column)));
                }
                Ok(Expr::Column(ColumnRef::new(name)))
            }
            other => Err(TcuError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1_two_way_join() {
        let stmt = parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID;").unwrap();
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.where_conjuncts().len(), 1);
        assert!(!stmt.has_aggregates());
        assert!(stmt.group_by.is_empty());
    }

    #[test]
    fn parses_q3_groupby_aggregate() {
        let stmt =
            parse("SELECT SUM(A.Val), B.Val FROM A, B WHERE A.ID = B.ID GROUP BY B.Val;").unwrap();
        assert!(stmt.has_aggregates());
        assert_eq!(stmt.group_by.len(), 1);
        let (func, _) = stmt.items[0].expr.first_aggregate().unwrap();
        assert_eq!(*func, AggFunc::Sum);
    }

    #[test]
    fn parses_q4_aggregate_expression() {
        let stmt = parse("SELECT SUM(A.Val * B.Val) FROM A, B WHERE A.ID = B.ID;").unwrap();
        assert!(stmt.has_aggregates());
        assert!(stmt.group_by.is_empty());
        let (_, arg) = stmt.items[0].expr.first_aggregate().unwrap();
        assert_eq!(arg.column_refs().len(), 2);
    }

    #[test]
    fn parses_figure5_matmul_query() {
        let stmt = parse(
            "SELECT A.col_num, B.row_num, SUM(A.val * B.val) as res \
             FROM A, B WHERE A.row_num = B.col_num GROUP BY A.col_num, B.row_num;",
        )
        .unwrap();
        assert_eq!(stmt.items.len(), 3);
        assert_eq!(stmt.items[2].output_name(), "res");
        assert_eq!(stmt.group_by.len(), 2);
    }

    #[test]
    fn parses_non_equi_join() {
        let stmt = parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID < B.ID").unwrap();
        match stmt.where_clause.as_ref().unwrap() {
            Expr::Binary { op, .. } => assert_eq!(*op, BinOp::Lt),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_three_way_join() {
        let stmt = parse(
            "SELECT A.Val, B.Val, C.Val FROM A, B, C \
             WHERE A.ID_1 = B.ID_1 AND B.ID_2 = C.ID_2;",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.where_conjuncts().len(), 2);
    }

    #[test]
    fn parses_ssb_q1_1_style_query() {
        let stmt = parse(
            "SELECT SUM(lo_extendedprice * lo_discount) AS revenue \
             FROM lineorder, date \
             WHERE lo_orderdate = d_datekey AND d_year = 1993 \
               AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.where_conjuncts().len(), 4);
        assert_eq!(stmt.items[0].output_name(), "revenue");
    }

    #[test]
    fn parses_ssb_q4_1_style_query_with_or() {
        let stmt = parse(
            "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit \
             FROM date, customer, supplier, part, lineorder \
             WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey \
               AND lo_partkey = p_partkey AND lo_orderdate = d_datekey \
               AND c_region = 'AMERICA' AND s_region = 'AMERICA' \
               AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2') \
             GROUP BY d_year, c_nation ORDER BY d_year, c_nation;",
        )
        .unwrap();
        assert_eq!(stmt.from.len(), 5);
        // The OR conjunct stays as a single conjunct.
        assert_eq!(stmt.where_conjuncts().len(), 7);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].ascending);
    }

    #[test]
    fn parses_table_aliases() {
        let stmt =
            parse("SELECT lo.quantity FROM lineorder lo, part AS p WHERE lo.partkey = p.partkey")
                .unwrap();
        assert_eq!(stmt.from[0].binding(), "lo");
        assert_eq!(stmt.from[1].binding(), "p");
        assert_eq!(stmt.from[1].name, "part");
    }

    #[test]
    fn parses_order_by_desc_and_limit() {
        let stmt =
            parse("SELECT A.Val FROM A WHERE A.ID > 3 ORDER BY A.Val DESC LIMIT 10").unwrap();
        assert!(!stmt.order_by[0].ascending);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn parses_count_star_and_avg() {
        let stmt = parse(
            "SELECT NODE.ID, COUNT(EDGE.SRC) FROM NODE, EDGE \
             WHERE NODE.ID = EDGE.SRC GROUP BY NODE.ID;",
        )
        .unwrap();
        let (f, _) = stmt.items[1].expr.first_aggregate().unwrap();
        assert_eq!(*f, AggFunc::Count);
        let stmt2 = parse("SELECT COUNT(*), AVG(A.v) FROM A").unwrap();
        assert!(stmt2.has_aggregates());
    }

    #[test]
    fn parses_pagerank_arithmetic() {
        let stmt = parse(
            "SELECT NODE.ID, (1 - 0.85) / 1024 as rank \
             FROM NODE, OUTDEGREE WHERE NODE.ID = OUTDEGREE.ID;",
        )
        .unwrap();
        assert_eq!(stmt.items[1].output_name(), "rank");
        assert!(matches!(stmt.items[1].expr, Expr::Binary { .. }));
    }

    #[test]
    fn parses_unary_minus() {
        let stmt = parse("SELECT -A.v FROM A WHERE A.v < -5").unwrap();
        assert_eq!(stmt.items.len(), 1);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("SELECT FROM A").is_err());
        assert!(parse("SELECT x").is_err());
        assert!(parse("SELECT x FROM A WHERE").is_err());
        assert!(parse("SELECT x FROM A LIMIT abc").is_err());
        assert!(parse("SELECT (x FROM A").is_err());
        assert!(parse("SELECT x FROM A extra junk everywhere (").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT x FROM A; SELECT y FROM B").is_err());
    }
}
