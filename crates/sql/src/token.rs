//! SQL tokenizer.

use tcudb_types::{TcuError, TcuResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (upper-cased) or identifier (original case preserved in
    /// `Ident`); keywords are recognised during parsing by comparing the
    /// upper-cased identifier text.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal.
    String(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
}

impl Token {
    /// If this token is an identifier, its upper-cased text (used for
    /// keyword matching).
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize a SQL string.
///
/// Comments of the form `-- …` run to the end of the line and are skipped.
/// `@identifiers` (the PageRank parameter syntax in the paper's listings)
/// are lexed as ordinary identifiers including the `@`.
pub fn tokenize(sql: &str) -> TcuResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < chars.len() && chars[i + 1] == '=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(TcuError::Parse("unterminated string literal".into()));
                }
                i += 1; // closing quote
                tokens.push(Token::String(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // A '.' followed by a non-digit is a qualified-name dot,
                    // not part of a number (e.g. `Q1.1` never appears in
                    // expressions; `1.5` does).
                    if chars[i] == '.' {
                        if i + 1 < chars.len() && chars[i + 1].is_ascii_digit() {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| TcuError::Parse(format!("bad float '{text}': {e}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| TcuError::Parse(format!("bad integer '{text}': {e}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '@' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '#')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(TcuError::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("SELECT A.Val FROM A WHERE A.ID = 3;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Int(3)));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn numbers_and_floats() {
        let toks = tokenize("1 2.5 0.85").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Float(2.5), Token::Float(0.85)]
        );
    }

    #[test]
    fn operators_all_forms() {
        let toks = tokenize("= != <> < <= > >= + - * /").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash
            ]
        );
    }

    #[test]
    fn strings_and_unterminated() {
        let toks = tokenize("'MFGR#12' 'ASIA'").unwrap();
        assert_eq!(toks[0], Token::String("MFGR#12".into()));
        assert_eq!(toks[1], Token::String("ASIA".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("-- Q1:\nSELECT x -- trailing\nFROM t").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn at_parameters_and_hash_idents() {
        let toks = tokenize("@alpha p_category = 'MFGR#12'").unwrap();
        assert_eq!(toks[0], Token::Ident("@alpha".into()));
        assert_eq!(toks[1], Token::Ident("p_category".into()));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("SELECT ?").is_err());
    }

    #[test]
    fn keyword_helper_uppercases() {
        assert_eq!(
            Token::Ident("select".into()).keyword(),
            Some("SELECT".to_string())
        );
        assert_eq!(Token::Comma.keyword(), None);
    }
}
