#![forbid(unsafe_code)]
//! # tcudb-sql
//!
//! A small SQL front-end covering the query dialect used throughout the
//! paper: single-block `SELECT` statements over one or more tables with
//! conjunctive/disjunctive predicates, equi- and non-equi join conditions,
//! `SUM`/`COUNT`/`AVG`/`MIN`/`MAX` aggregates (optionally over arithmetic
//! expressions), `GROUP BY`, `ORDER BY` and `LIMIT`.
//!
//! This is intentionally *not* a full SQL implementation — it parses the
//! microbenchmark queries Q1–Q5, the Figure 5 matrix-multiplication query,
//! all 13 Star Schema Benchmark queries, the entity-matching blocking
//! queries and the three PageRank queries, which is the complete query
//! surface of the paper's evaluation.
//!
//! ```
//! use tcudb_sql::parse;
//! let stmt = parse("SELECT A.Val, B.Val FROM A, B WHERE A.ID = B.ID").unwrap();
//! assert_eq!(stmt.from.len(), 2);
//! ```

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    AggFunc, BinOp, ColumnRef, Expr, OrderByItem, SelectItem, SelectStatement, TableRef,
};
pub use parser::parse;
pub use token::{tokenize, Token};
