//! Abstract syntax tree for the supported SQL dialect.

use std::fmt;
use tcudb_types::Value;

/// Aggregate functions supported by the engine.
///
/// The paper's TCU rewrite covers SUM / COUNT / AVG (§3.3); MIN / MAX are
/// listed as beyond the current TCU programming interface and always fall
/// back to CPU/GPU execution — we still parse and execute them on the
/// baseline paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// SUM(expr)
    Sum,
    /// COUNT(expr) / COUNT(*)
    Count,
    /// AVG(expr)
    Avg,
    /// MIN(expr) — not TCU-expressible.
    Min,
    /// MAX(expr) — not TCU-expressible.
    Max,
}

impl AggFunc {
    /// Parse an aggregate name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Can the tensor-core rewrite of §3.3 express this aggregate?
    pub fn tcu_expressible(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Count | AggFunc::Avg)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Binary operators (arithmetic, comparison and boolean connectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Is this a comparison operator (usable as a join condition)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// Is this an arithmetic operator?
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// A (possibly qualified) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, when qualified (`A.Val`).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn new(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Aggregate function call.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (COUNT(*) uses `Literal(Int(1))`).
        arg: Box<Expr>,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Convenience constructor for a column reference.
    pub fn col(table: &str, column: &str) -> Expr {
        Expr::Column(ColumnRef::qualified(table, column))
    }

    /// Split a conjunctive predicate tree into its AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// All column references appearing in this expression.
    pub fn column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Aggregate { arg, .. } => arg.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
        }
    }

    /// Does this expression contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
        }
    }

    /// The first aggregate call found in this expression (depth-first).
    pub fn first_aggregate(&self) -> Option<(&AggFunc, &Expr)> {
        match self {
            Expr::Aggregate { func, arg } => Some((func, arg)),
            Expr::Binary { left, right, .. } => {
                left.first_aggregate().or_else(|| right.first_aggregate())
            }
            Expr::Between { expr, low, high } => expr
                .first_aggregate()
                .or_else(|| low.first_aggregate())
                .or_else(|| high.first_aggregate()),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Aggregate { func, arg } => write!(f, "{func}({arg})"),
            Expr::Between { expr, low, high } => {
                write!(f, "({expr} BETWEEN {low} AND {high})")
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias when present, otherwise a
    /// rendering of the expression.
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => match &self.expr {
                Expr::Column(c) => c.column.clone(),
                other => other.to_string(),
            },
        }
    }
}

/// A table in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name as registered in the catalog.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name that qualifies columns of this table (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression (a column reference or output alias).
    pub expr: Expr,
    /// Ascending (default) vs descending.
    pub ascending: bool,
}

/// A parsed single-block SELECT statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM tables.
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// The AND-ed conjuncts of the WHERE clause (empty when absent).
    pub fn where_conjuncts(&self) -> Vec<&Expr> {
        self.where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default()
    }

    /// Does any SELECT item contain an aggregate?
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|i| i.expr.contains_aggregate())
    }

    /// Find the table binding (alias or name) that a column reference
    /// belongs to, when it is qualified.
    pub fn resolve_table<'a>(&'a self, col: &ColumnRef) -> Option<&'a TableRef> {
        let t = col.table.as_deref()?;
        self.from
            .iter()
            .find(|tr| tr.binding().eq_ignore_ascii_case(t) || tr.name.eq_ignore_ascii_case(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_func_parsing_and_expressibility() {
        assert_eq!(AggFunc::from_name("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
        assert!(AggFunc::Sum.tcu_expressible());
        assert!(AggFunc::Avg.tcu_expressible());
        assert!(!AggFunc::Min.tcu_expressible());
        assert_eq!(AggFunc::Max.to_string(), "MAX");
    }

    #[test]
    fn binop_classification_and_flip() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Mul.is_arithmetic());
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::GtEq.flip(), BinOp::LtEq);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
        assert_eq!(BinOp::And.to_string(), "AND");
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a", "x"), BinOp::Eq, Expr::col("b", "x")),
            BinOp::And,
            Expr::binary(Expr::col("a", "y"), BinOp::Lt, Expr::Literal(Value::Int(5))),
        );
        assert_eq!(e.conjuncts().len(), 2);
        // OR does not split.
        let o = Expr::binary(Expr::col("a", "x"), BinOp::Or, Expr::col("b", "x"));
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn column_collection_and_aggregate_detection() {
        let e = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Box::new(Expr::binary(
                Expr::col("a", "val"),
                BinOp::Mul,
                Expr::col("b", "val"),
            )),
        };
        assert_eq!(e.column_refs().len(), 2);
        assert!(e.contains_aggregate());
        let (f, _) = e.first_aggregate().unwrap();
        assert_eq!(*f, AggFunc::Sum);
        assert!(!Expr::Literal(Value::Int(1)).contains_aggregate());
    }

    #[test]
    fn select_item_output_names() {
        let with_alias = SelectItem {
            expr: Expr::col("a", "val"),
            alias: Some("res".into()),
        };
        assert_eq!(with_alias.output_name(), "res");
        let bare = SelectItem {
            expr: Expr::col("a", "val"),
            alias: None,
        };
        assert_eq!(bare.output_name(), "val");
    }

    #[test]
    fn table_binding_and_resolution() {
        let stmt = SelectStatement {
            from: vec![
                TableRef {
                    name: "lineorder".into(),
                    alias: Some("lo".into()),
                },
                TableRef {
                    name: "part".into(),
                    alias: None,
                },
            ],
            ..Default::default()
        };
        let c = ColumnRef::qualified("lo", "quantity");
        assert_eq!(stmt.resolve_table(&c).unwrap().name, "lineorder");
        let c2 = ColumnRef::qualified("PART", "p_brand");
        assert_eq!(stmt.resolve_table(&c2).unwrap().name, "part");
        assert!(stmt.resolve_table(&ColumnRef::new("x")).is_none());
    }

    #[test]
    fn display_renders_readably() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("lo", "discount")),
            low: Box::new(Expr::Literal(Value::Int(1))),
            high: Box::new(Expr::Literal(Value::Int(3))),
        };
        assert_eq!(e.to_string(), "(lo.discount BETWEEN 1 AND 3)");
        let lit = Expr::Literal(Value::Text("ASIA".into()));
        assert_eq!(lit.to_string(), "'ASIA'");
    }
}
