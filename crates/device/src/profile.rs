//! Device profiles: the hardware constants of the simulated GPUs.

use serde::{Deserialize, Serialize};

/// Hardware constants of a simulated GPU + host platform.
///
/// The two built-in profiles correspond to the paper's testbeds:
/// an NVIDIA GeForce RTX 3090 (Ampere, §5.1) and an RTX 2080 (Turing,
/// §5.6), both attached over PCIe 3.0 x16 to an Intel i7-7700K host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Peak tensor-core throughput in TFLOP/s for fp16 input / fp32
    /// accumulate (the paper measured 63 TFLOPS on the RTX 3090).
    pub tcu_tflops: f64,
    /// Peak conventional CUDA-core throughput in TFLOP/s (the paper
    /// measured 19 TFLOPS mixed-precision on the RTX 3090's CUDA cores).
    pub cuda_tflops: f64,
    /// Device-memory (GDDR) bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host↔device interconnect bandwidth in GB/s (PCIe 3.0 x16 ≈ 12 GB/s
    /// effective).
    pub pcie_bandwidth_gbps: f64,
    /// Device memory capacity in bytes.
    pub device_mem_bytes: usize,
    /// Number of CUDA cores (vector lanes) — `p` in the GPU-assisted data
    /// transformation estimate DT_op ≈ α·(m+n)/p.
    pub cuda_cores: usize,
    /// Number of tensor cores.
    pub tensor_cores: usize,
    /// Host scan/transform throughput α expressed as seconds per row for a
    /// single CPU core building matrix entries from table rows.
    pub host_seconds_per_row: f64,
    /// Effective per-row cost of the GPU hash-join's build/probe phases
    /// (the "row by row" iteration the paper blames for YDB's cost).
    pub gpu_hash_seconds_per_row: f64,
    /// Effective per-output-tuple cost of materialising join results with
    /// the row-by-row GPU hash-join operator (the expensive path the paper
    /// blames for YDB's HashJoin time).
    pub gpu_join_materialize_seconds_per_tuple: f64,
    /// Per-output-tuple cost of streaming, coalesced result writes
    /// (the `nonzero` extraction and memcpy-style writers).
    pub gpu_output_seconds_per_tuple: f64,
    /// Per-row cost of the GPU group-by/aggregation operator.
    pub gpu_agg_seconds_per_row: f64,
    /// Kernel launch overhead in seconds (charged once per kernel).
    pub kernel_launch_seconds: f64,
    /// Efficiency factor (0..1] applied to the TCU peak for the tiled
    /// sparse TCU-SpMM kernel (irregular fragment gathering).
    pub spmm_efficiency: f64,
    /// Efficiency factor (0..1] applied to the TCU peak when running the
    /// blocked/pipelined MSplitGEMM path.
    pub blocked_efficiency: f64,
}

impl DeviceProfile {
    /// The NVIDIA GeForce RTX 3090 testbed of §5.1 (Ampere, 24 GB GDDR6X,
    /// 328 tensor cores, 10496 CUDA cores, PCIe 3.0 x16).
    pub fn rtx_3090() -> DeviceProfile {
        DeviceProfile {
            name: "RTX 3090".to_string(),
            tcu_tflops: 63.0,
            cuda_tflops: 19.0,
            mem_bandwidth_gbps: 936.0,
            pcie_bandwidth_gbps: 12.0,
            device_mem_bytes: 24 * 1024 * 1024 * 1024,
            cuda_cores: 10_496,
            tensor_cores: 328,
            host_seconds_per_row: 12e-9,
            gpu_hash_seconds_per_row: 60e-9,
            gpu_join_materialize_seconds_per_tuple: 25e-9,
            gpu_output_seconds_per_tuple: 1.5e-9,
            gpu_agg_seconds_per_row: 2.5e-9,
            kernel_launch_seconds: 8e-6,
            spmm_efficiency: 0.25,
            blocked_efficiency: 0.7,
        }
    }

    /// The NVIDIA GeForce RTX 2080 of §5.6 (Turing, 8 GB GDDR6, 368 tensor
    /// cores, 2944 CUDA cores).  Tensor throughput roughly halves and the
    /// CUDA-core / bandwidth figures drop accordingly, which is what
    /// produces the generation-over-generation scaling of Figure 14.
    pub fn rtx_2080() -> DeviceProfile {
        DeviceProfile {
            name: "RTX 2080".to_string(),
            tcu_tflops: 32.0,
            cuda_tflops: 10.0,
            mem_bandwidth_gbps: 448.0,
            pcie_bandwidth_gbps: 12.0,
            device_mem_bytes: 8 * 1024 * 1024 * 1024,
            cuda_cores: 2_944,
            tensor_cores: 368,
            host_seconds_per_row: 12e-9,
            gpu_hash_seconds_per_row: 75e-9,
            gpu_join_materialize_seconds_per_tuple: 33e-9,
            gpu_output_seconds_per_tuple: 2.2e-9,
            gpu_agg_seconds_per_row: 3.5e-9,
            kernel_launch_seconds: 12e-6,
            spmm_efficiency: 0.22,
            blocked_efficiency: 0.65,
        }
    }

    /// TCU throughput after adjusting for input precision: int8 doubles and
    /// int4 quadruples the fp16 MMA rate on Turing/Ampere tensor cores.
    pub fn tcu_tflops_for(&self, precision: tcudb_types::Precision) -> f64 {
        match precision {
            tcudb_types::Precision::Half => self.tcu_tflops,
            tcudb_types::Precision::Int8 => self.tcu_tflops * 2.0,
            tcudb_types::Precision::Int4 => self.tcu_tflops * 4.0,
            tcudb_types::Precision::Fp32 => self.cuda_tflops,
        }
    }

    /// Does a working set of `bytes` fit in device memory (leaving a small
    /// reserve for CUDA context and staging buffers)?
    pub fn fits_in_device(&self, bytes: usize) -> bool {
        let reserve = self.device_mem_bytes / 16;
        bytes.saturating_add(reserve) <= self.device_mem_bytes
    }

    /// The data-transformation parallelism `p` used by the GPU-assisted
    /// transform estimate.
    pub fn transform_parallelism(&self) -> f64 {
        // The paper notes p > 2000 on modern GPUs; effective parallelism is
        // bounded by occupancy, so use half the CUDA core count.
        (self.cuda_cores as f64 / 2.0).max(1.0)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::rtx_3090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_types::Precision;

    #[test]
    fn builtin_profiles_have_paper_constants() {
        let p = DeviceProfile::rtx_3090();
        assert_eq!(p.tcu_tflops, 63.0);
        assert_eq!(p.cuda_tflops, 19.0);
        assert_eq!(p.tensor_cores, 328);
        assert_eq!(p.cuda_cores, 10_496);
        assert_eq!(p.device_mem_bytes, 24 * 1024 * 1024 * 1024);

        let q = DeviceProfile::rtx_2080();
        assert_eq!(q.tensor_cores, 368);
        assert_eq!(q.cuda_cores, 2_944);
        assert!(q.tcu_tflops < p.tcu_tflops);
    }

    #[test]
    fn precision_scales_tcu_throughput() {
        let p = DeviceProfile::rtx_3090();
        assert_eq!(p.tcu_tflops_for(Precision::Half), 63.0);
        assert_eq!(p.tcu_tflops_for(Precision::Int8), 126.0);
        assert_eq!(p.tcu_tflops_for(Precision::Int4), 252.0);
        assert_eq!(p.tcu_tflops_for(Precision::Fp32), 19.0);
    }

    #[test]
    fn device_memory_fit_checks_reserve() {
        let p = DeviceProfile::rtx_3090();
        assert!(p.fits_in_device(1024));
        assert!(p.fits_in_device(20 * 1024 * 1024 * 1024));
        assert!(!p.fits_in_device(24 * 1024 * 1024 * 1024));
        assert!(!p.fits_in_device(usize::MAX));
    }

    #[test]
    fn transform_parallelism_positive() {
        assert!(DeviceProfile::rtx_3090().transform_parallelism() > 1000.0);
        assert!(DeviceProfile::rtx_2080().transform_parallelism() > 1000.0);
    }

    #[test]
    fn default_is_3090() {
        assert_eq!(DeviceProfile::default().name, "RTX 3090");
    }
}
