//! Per-phase execution timelines.
//!
//! Every engine records how much (simulated or measured) time each phase of
//! a query consumed.  The phases mirror the stacked-bar breakdowns of the
//! paper's figures: "Fill Matrices (TCUDB)", "GPU Memory Copy",
//! "HashJoin (YDB)", "GroupBy+Aggregation (YDB)",
//! "Join+GroupBy+Aggregation (TCUDB)", and so on.

use std::fmt;

/// A phase of query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Building the matrix operands from table data (DT_op).
    FillMatrices,
    /// Host→device copies (DM_op).
    MemcpyHostToDevice,
    /// Device→host copies of results.
    MemcpyDeviceToHost,
    /// A TCU kernel: dense join GEMM, join+aggregate GEMM, SpMM or blocked
    /// GEMM (CT_op).
    TcuKernel,
    /// The GPU hash-join operator of the YDB baseline.
    HashJoin,
    /// The GPU group-by / aggregation operators of the YDB baseline.
    GroupByAggregation,
    /// A table scan / selection operator (either engine).
    ScanFilter,
    /// CPU-side execution (the MonetDB baseline and CPU fallbacks).
    CpuCompute,
    /// Result materialisation back into table form (nonzero + remap).
    ResultMaterialize,
    /// Anything else (kernel launches, plan bookkeeping).
    Other,
}

impl Phase {
    /// Label used when printing breakdowns.
    pub fn label(self) -> &'static str {
        match self {
            Phase::FillMatrices => "Fill Matrices",
            Phase::MemcpyHostToDevice => "GPU Memory Copy (H2D)",
            Phase::MemcpyDeviceToHost => "GPU Memory Copy (D2H)",
            Phase::TcuKernel => "TCU Kernel",
            Phase::HashJoin => "HashJoin",
            Phase::GroupByAggregation => "GroupBy+Aggregation",
            Phase::ScanFilter => "Scan/Filter",
            Phase::CpuCompute => "CPU Compute",
            Phase::ResultMaterialize => "Result Materialize",
            Phase::Other => "Other",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded timeline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Phase category.
    pub phase: Phase,
    /// Optional operator-specific detail (e.g. "TcuJoin 4096x4096x32").
    pub detail: String,
    /// Simulated (or measured) seconds spent.
    pub seconds: f64,
}

/// An ordered record of execution phases and their durations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTimeline {
    entries: Vec<TimelineEntry>,
}

impl ExecutionTimeline {
    /// Create an empty timeline.
    pub fn new() -> ExecutionTimeline {
        ExecutionTimeline::default()
    }

    /// Record `seconds` spent in `phase`.
    pub fn record(&mut self, phase: Phase, seconds: f64) {
        self.record_detail(phase, "", seconds);
    }

    /// Record `seconds` spent in `phase` with a free-form detail string.
    pub fn record_detail(&mut self, phase: Phase, detail: impl Into<String>, seconds: f64) {
        self.entries.push(TimelineEntry {
            phase,
            detail: detail.into(),
            seconds: seconds.max(0.0),
        });
    }

    /// All recorded entries in order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Total seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Total seconds spent in one phase category.
    pub fn seconds_in(&self, phase: Phase) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.seconds)
            .sum()
    }

    /// Total data-movement seconds (host↔device copies).
    pub fn memcpy_seconds(&self) -> f64 {
        self.seconds_in(Phase::MemcpyHostToDevice) + self.seconds_in(Phase::MemcpyDeviceToHost)
    }

    /// Append every entry of `other` to this timeline.
    pub fn merge(&mut self, other: &ExecutionTimeline) {
        self.entries.extend(other.entries.iter().cloned());
    }

    /// A compact per-phase breakdown, aggregated by phase category and
    /// sorted by phase order.
    pub fn breakdown(&self) -> Vec<(Phase, f64)> {
        let mut phases: Vec<Phase> = self.entries.iter().map(|e| e.phase).collect();
        phases.sort();
        phases.dedup();
        phases
            .into_iter()
            .map(|p| (p, self.seconds_in(p)))
            .collect()
    }

    /// Render the breakdown as text (used by examples and the figures
    /// harness).
    pub fn format_breakdown(&self) -> String {
        let total = self.total_seconds();
        let mut out = String::new();
        for (phase, secs) in self.breakdown() {
            let pct = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<24} {:>12.6} ms  ({:>5.1}%)\n",
                phase.label(),
                secs * 1e3,
                pct
            ));
        }
        out.push_str(&format!("  {:<24} {:>12.6} ms\n", "TOTAL", total * 1e3));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = ExecutionTimeline::new();
        t.record(Phase::FillMatrices, 0.010);
        t.record(Phase::MemcpyHostToDevice, 0.002);
        t.record_detail(Phase::TcuKernel, "TcuJoin 4x4x4", 0.005);
        t.record(Phase::MemcpyDeviceToHost, 0.001);
        assert!((t.total_seconds() - 0.018).abs() < 1e-12);
        assert!((t.seconds_in(Phase::TcuKernel) - 0.005).abs() < 1e-12);
        assert!((t.memcpy_seconds() - 0.003).abs() < 1e-12);
        assert_eq!(t.entries().len(), 4);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = ExecutionTimeline::new();
        t.record(Phase::Other, -1.0);
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn merge_appends_entries() {
        let mut a = ExecutionTimeline::new();
        a.record(Phase::HashJoin, 1.0);
        let mut b = ExecutionTimeline::new();
        b.record(Phase::GroupByAggregation, 2.0);
        a.merge(&b);
        assert_eq!(a.entries().len(), 2);
        assert!((a.total_seconds() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_aggregates_by_phase() {
        let mut t = ExecutionTimeline::new();
        t.record(Phase::TcuKernel, 1.0);
        t.record(Phase::TcuKernel, 2.0);
        t.record(Phase::FillMatrices, 0.5);
        let b = t.breakdown();
        assert_eq!(b.len(), 2);
        let tcu = b.iter().find(|(p, _)| *p == Phase::TcuKernel).unwrap();
        assert!((tcu.1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_contains_labels_and_total() {
        let mut t = ExecutionTimeline::new();
        t.record(Phase::HashJoin, 0.001);
        let s = t.format_breakdown();
        assert!(s.contains("HashJoin"));
        assert!(s.contains("TOTAL"));
        let empty = ExecutionTimeline::new().format_breakdown();
        assert!(empty.contains("TOTAL"));
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::FillMatrices.label(), "Fill Matrices");
        assert_eq!(Phase::HashJoin.to_string(), "HashJoin");
    }
}
