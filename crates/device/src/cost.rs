//! The analytic cost model (§4.2.2 of the paper).
//!
//! The same formulas serve two purposes, exactly as in the paper:
//!
//! 1. **Plan selection** — the query optimizer estimates
//!    `DT_op + DM_op + CT_op` for each candidate TCU plan and compares it
//!    against the estimated cost of the conventional GPU (hash-join) plan.
//! 2. **Simulated measurement** — once a plan executes, the physical
//!    operators feed their *actual* operation counts (from the tensor
//!    kernels' statistics) back through the same model to produce the
//!    simulated per-phase timings reported in the benchmark harness.

use crate::profile::DeviceProfile;
use tcudb_tensor::{BlockedGemmStats, GemmStats, SpmmStats};
use tcudb_types::Precision;

/// Cost model bound to a device profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostModel {
    profile: DeviceProfile,
}

impl CostModel {
    /// Create a cost model for the given device.
    pub fn new(profile: DeviceProfile) -> CostModel {
        CostModel { profile }
    }

    /// The underlying device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    // ------------------------------------------------------------------
    // DT_op: data transformation
    // ------------------------------------------------------------------

    /// CPU-side data transformation: `DT_op ≈ α · rows` (§4.2.2,
    /// "CPU-based data transformation").
    pub fn transform_cpu_seconds(&self, rows: usize) -> f64 {
        self.profile.host_seconds_per_row * rows as f64
    }

    /// GPU-assisted data transformation: `DT_op ≈ α · rows / p`.
    pub fn transform_gpu_seconds(&self, rows: usize) -> f64 {
        self.profile.host_seconds_per_row * rows as f64 / self.profile.transform_parallelism()
            + self.profile.kernel_launch_seconds
    }

    // ------------------------------------------------------------------
    // DM_op: data movement
    // ------------------------------------------------------------------

    /// Host→device transfer time for `bytes` over PCIe (Equation 1/2).
    pub fn h2d_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.profile.pcie_bandwidth_gbps * 1e9)
    }

    /// Device→host transfer time for `bytes` over PCIe.
    pub fn d2h_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.profile.pcie_bandwidth_gbps * 1e9)
    }

    /// Device-memory traffic time (reads/writes of `bytes` inside the GPU).
    pub fn device_mem_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.profile.mem_bandwidth_gbps * 1e9)
    }

    // ------------------------------------------------------------------
    // CT_op: compute
    // ------------------------------------------------------------------

    /// Dense TCU GEMM time: `M·N·K·2 / peak_TCU_FLOPS` (Equation 3), with
    /// the peak adjusted for the input precision, plus one kernel launch.
    pub fn tcu_gemm_seconds(&self, stats: &GemmStats) -> f64 {
        let peak = self.profile.tcu_tflops_for(stats.precision) * 1e12;
        // GEMMs on small matrices cannot saturate the tensor cores; model a
        // memory-bandwidth floor from the bytes the kernel touches.
        let compute = stats.flops / peak;
        let bandwidth = self.device_mem_seconds(stats.bytes_touched);
        compute.max(bandwidth) + self.profile.kernel_launch_seconds
    }

    /// Dense GEMM time on conventional CUDA cores (the Figure 3 baseline
    /// and the arithmetic the YDB/MAGiQ baselines use).
    pub fn cuda_gemm_seconds(&self, stats: &GemmStats) -> f64 {
        let peak = self.profile.cuda_tflops * 1e12;
        let compute = stats.flops / peak;
        let bandwidth = self.device_mem_seconds(stats.bytes_touched);
        compute.max(bandwidth) + self.profile.kernel_launch_seconds
    }

    /// Generic CUDA-core compute time for `flops` floating point operations.
    pub fn cuda_flops_seconds(&self, flops: f64) -> f64 {
        flops / (self.profile.cuda_tflops * 1e12) + self.profile.kernel_launch_seconds
    }

    /// TCU-SpMM time (§4.2.4): per-tile MMA work at a de-rated tensor-core
    /// throughput, plus the linear CSR construction / tile-filtering scan
    /// the paper charges "with a simple linear function of the input size".
    pub fn tcu_spmm_seconds(&self, stats: &SpmmStats, precision: Precision) -> f64 {
        let peak = self.profile.tcu_tflops_for(precision) * 1e12 * self.profile.spmm_efficiency;
        let mma = stats.flops / peak;
        let nnz_a = stats.density_a * stats.m as f64 * stats.k as f64;
        let nnz_b = stats.density_b * stats.n as f64 * stats.k as f64;
        let build = (nnz_a + nnz_b) * 0.5e-9; // GPU-parallel CSR build + tile filter scan
        let bandwidth = self.device_mem_seconds(stats.bytes_touched);
        mma.max(bandwidth) + build + self.profile.kernel_launch_seconds
    }

    /// Blocked/pipelined GEMM time (§4.2.3): compute at a de-rated peak
    /// overlapped with the streaming of operand blocks over PCIe; the
    /// pipeline hides the smaller of the two, so the stage time is the max
    /// of transfer and compute plus a fill/drain term.
    pub fn blocked_gemm_seconds(&self, stats: &BlockedGemmStats, precision: Precision) -> f64 {
        let peak = self.profile.tcu_tflops_for(precision) * 1e12 * self.profile.blocked_efficiency;
        let compute = stats.flops / peak;
        let stream_in = self.h2d_seconds(stats.bytes_streamed_in);
        let stream_out = self.d2h_seconds(stats.bytes_streamed_out);
        let steady_state = compute.max(stream_in + stream_out);
        // Pipeline fill/drain: one block transfer + one block compute.
        let stages = stats.pipeline_stages.max(1) as f64;
        let fill_drain = (stream_in + compute) / stages;
        steady_state + fill_drain + self.profile.kernel_launch_seconds
    }

    // ------------------------------------------------------------------
    // Conventional GPU operators (the YDB cost model of [89])
    // ------------------------------------------------------------------

    /// GPU hash-join time: build + probe are row-by-row CUDA-core work,
    /// result materialisation costs per output tuple.
    pub fn gpu_hash_join_seconds(
        &self,
        build_rows: usize,
        probe_rows: usize,
        output_rows: usize,
    ) -> f64 {
        let rows = (build_rows + probe_rows) as f64;
        rows * self.profile.gpu_hash_seconds_per_row
            + output_rows as f64 * self.profile.gpu_join_materialize_seconds_per_tuple
            + self.profile.kernel_launch_seconds * 2.0
    }

    /// GPU group-by + aggregation time over `input_rows` producing
    /// `groups` groups.
    pub fn gpu_groupby_agg_seconds(&self, input_rows: usize, groups: usize) -> f64 {
        input_rows as f64 * self.profile.gpu_agg_seconds_per_row
            + groups as f64 * self.profile.gpu_output_seconds_per_tuple
            + self.profile.kernel_launch_seconds
    }

    /// GPU aggregation (no grouping) over `input_rows`.
    pub fn gpu_aggregation_seconds(&self, input_rows: usize) -> f64 {
        input_rows as f64 * self.profile.gpu_agg_seconds_per_row
            + self.profile.kernel_launch_seconds
    }

    /// GPU scan + filter over `rows` (coalesced columnar scan, bandwidth
    /// bound).
    pub fn gpu_scan_seconds(&self, rows: usize, bytes_per_row: usize) -> f64 {
        self.device_mem_seconds((rows * bytes_per_row) as f64) + self.profile.kernel_launch_seconds
    }

    // ------------------------------------------------------------------
    // Result materialisation
    // ------------------------------------------------------------------

    /// Cost of the `nonzero(·)` extraction over an `m×n` result matrix
    /// producing `output_rows` coordinates: a bandwidth-bound scan of the
    /// matrix plus a write per output.
    pub fn nonzero_seconds(&self, m: usize, n: usize, output_rows: usize) -> f64 {
        self.device_mem_seconds(m as f64 * n as f64 * 4.0)
            + output_rows as f64 * self.profile.gpu_output_seconds_per_tuple
            + self.profile.kernel_launch_seconds
    }

    /// Cost of extracting the non-zeros of a *sparse* result: only the
    /// tiles the TCU-SpMM kernel actually produced have to be scanned.
    pub fn nonzero_sparse_seconds(&self, tiles_produced: usize, output_rows: usize) -> f64 {
        self.device_mem_seconds(tiles_produced as f64 * 16.0 * 16.0 * 4.0)
            + output_rows as f64 * self.profile.gpu_output_seconds_per_tuple
            + self.profile.kernel_launch_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcudb_types::Precision;

    fn model() -> CostModel {
        CostModel::new(DeviceProfile::rtx_3090())
    }

    fn gemm_stats(m: usize, n: usize, k: usize, precision: Precision) -> GemmStats {
        GemmStats {
            m,
            n,
            k,
            flops: 2.0 * (m * n * k) as f64,
            bytes_touched: ((m * k + k * n) as f64) * precision.size_bytes() + (m * n) as f64 * 4.0,
            precision,
        }
    }

    #[test]
    fn tcu_beats_cuda_cores_on_large_gemm() {
        // Figure 3: TCUs outperform CUDA cores by up to ~5× on big GEMMs.
        let m = model();
        let stats = gemm_stats(8192, 8192, 8192, Precision::Half);
        let tcu = m.tcu_gemm_seconds(&stats);
        let cuda = m.cuda_gemm_seconds(&stats);
        assert!(cuda / tcu > 2.0, "cuda={cuda}, tcu={tcu}");
        assert!(cuda / tcu < 6.0, "cuda={cuda}, tcu={tcu}");
    }

    #[test]
    fn small_gemm_is_launch_or_bandwidth_bound() {
        let m = model();
        let stats = gemm_stats(64, 64, 64, Precision::Half);
        let t = m.tcu_gemm_seconds(&stats);
        assert!(t >= m.profile().kernel_launch_seconds);
        assert!(t < 1e-3);
    }

    #[test]
    fn transform_gpu_is_faster_than_cpu_for_large_inputs() {
        let m = model();
        let rows = 10_000_000;
        assert!(m.transform_gpu_seconds(rows) < m.transform_cpu_seconds(rows));
    }

    #[test]
    fn pcie_transfer_time_matches_bandwidth() {
        let m = model();
        // 12 GB at 12 GB/s ≈ 1 s.
        let t = m.h2d_seconds(12e9);
        assert!((t - 1.0).abs() < 1e-9);
        assert_eq!(m.h2d_seconds(0.0), 0.0);
        assert!(m.d2h_seconds(1e9) > 0.0);
    }

    #[test]
    fn precision_speeds_up_tcu_gemm() {
        let m = model();
        let half = m.tcu_gemm_seconds(&gemm_stats(4096, 4096, 4096, Precision::Half));
        let int8 = m.tcu_gemm_seconds(&gemm_stats(4096, 4096, 4096, Precision::Int8));
        assert!(int8 < half);
    }

    #[test]
    fn hash_join_cost_grows_with_output() {
        let m = model();
        let few = m.gpu_hash_join_seconds(4096, 4096, 4_096);
        let many = m.gpu_hash_join_seconds(4096, 4096, 4_000_000);
        assert!(many > few);
        // Row-count term dominates when outputs are similar.
        let more_rows = m.gpu_hash_join_seconds(40_960, 40_960, 4_096);
        assert!(more_rows > few);
    }

    #[test]
    fn spmm_cost_scales_with_processed_tiles() {
        let m = model();
        let sparse = SpmmStats {
            m: 4096,
            n: 4096,
            k: 4096,
            tiles_processed: 100,
            tiles_skipped: 16_284,
            density_a: 0.001,
            density_b: 0.001,
            flops: 100.0 * 2.0 * 4096.0,
            dense_equivalent_flops: 2.0 * 4096.0f64.powi(3),
            bytes_touched: 1e6,
        };
        let denser = SpmmStats {
            tiles_processed: 10_000,
            flops: 10_000.0 * 2.0 * 4096.0,
            ..sparse
        };
        assert!(
            m.tcu_spmm_seconds(&sparse, Precision::Half)
                <= m.tcu_spmm_seconds(&denser, Precision::Half)
        );
    }

    #[test]
    fn blocked_gemm_slower_than_in_memory_gemm() {
        let m = model();
        let g = gemm_stats(16384, 16384, 16384, Precision::Half);
        let blocked = BlockedGemmStats {
            m: 16384,
            n: 16384,
            k: 16384,
            block_size: 8192,
            block_multiplications: 8,
            flops: g.flops,
            bytes_streamed_in: 8.0 * 2.0 * 8192.0 * 8192.0 * 4.0,
            bytes_streamed_out: 16384.0 * 16384.0 * 4.0,
            pipeline_stages: 4,
        };
        assert!(m.blocked_gemm_seconds(&blocked, Precision::Half) > m.tcu_gemm_seconds(&g));
    }

    #[test]
    fn groupby_and_scan_costs_positive_and_monotonic() {
        let m = model();
        assert!(m.gpu_groupby_agg_seconds(1_000_000, 32) > m.gpu_groupby_agg_seconds(1_000, 32));
        assert!(m.gpu_aggregation_seconds(1_000_000) > m.gpu_aggregation_seconds(1_000));
        assert!(m.gpu_scan_seconds(1_000_000, 8) > m.gpu_scan_seconds(1_000, 8));
        assert!(m.nonzero_seconds(4096, 4096, 100_000) > 0.0);
    }

    #[test]
    fn rtx_2080_is_slower_for_tcu_work() {
        let m3090 = CostModel::new(DeviceProfile::rtx_3090());
        let m2080 = CostModel::new(DeviceProfile::rtx_2080());
        let stats = gemm_stats(8192, 8192, 1024, Precision::Half);
        assert!(m2080.tcu_gemm_seconds(&stats) > m3090.tcu_gemm_seconds(&stats));
        // And the YDB-style operators are slower too, but by a smaller factor.
        let j3090 = m3090.gpu_hash_join_seconds(32768, 32768, 33_000_000);
        let j2080 = m2080.gpu_hash_join_seconds(32768, 32768, 33_000_000);
        let tcu_ratio = m2080.tcu_gemm_seconds(&stats) / m3090.tcu_gemm_seconds(&stats);
        let ydb_ratio = j2080 / j3090;
        assert!(tcu_ratio > ydb_ratio, "tcu {tcu_ratio} vs ydb {ydb_ratio}");
    }
}
