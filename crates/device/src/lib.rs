#![forbid(unsafe_code)]
//! # tcudb-device
//!
//! The simulated GPU device that stands in for the paper's NVIDIA RTX 3090
//! / RTX 2080 test hardware (see DESIGN.md, "Hardware substitution").
//!
//! The real TCUDB measures wall-clock time of CUDA kernels; we cannot, so
//! every physical operator in the engines reports *what it did* (FLOPs,
//! bytes moved, rows scanned, tiles skipped, …) and this crate converts
//! that work into **simulated device time** using the same analytic cost
//! structure the paper's own optimizer uses (§4.2.2, Equations 1–3):
//!
//! * `DT_op` — data transformation: `α·(m+n)` on the CPU, `α·(m+n)/p` with
//!   GPU assistance,
//! * `DM_op` — data movement over PCIe: bytes / bandwidth,
//! * `CT_op` — compute: `2·M·N·K / peak_FLOPS`, de-rated for blocked and
//!   sparse execution.
//!
//! The module also provides an [`ExecutionTimeline`] that the engines use
//! to record a per-phase breakdown — the same breakdown the paper plots in
//! its stacked-bar figures (Fill Matrices, GPU Memory Copy, HashJoin,
//! GroupBy/Aggregation, Join…).

pub mod cost;
pub mod profile;
pub mod timeline;

pub use cost::CostModel;
pub use profile::DeviceProfile;
pub use timeline::{ExecutionTimeline, Phase};
