#![forbid(unsafe_code)]
//! # tcudb-ydb
//!
//! The **YDB baseline**: a conventional GPU-accelerated warehouse engine in
//! the style of Yuan et al.'s Yinyang DB, which the paper uses as its main
//! point of comparison (§2.2, §5).
//!
//! The engine executes the same SQL dialect as TCUDB but lowers every query
//! onto the classic GPU operator pipeline: columnar scan + filter, hash
//! join (build + probe, materialising matches row by row on CUDA cores),
//! then separate group-by and aggregation kernels.  It never touches the
//! tensor cores, which is exactly the missed opportunity the paper
//! describes in §2.3.
//!
//! Results are always identical to TCUDB's (the integration tests assert
//! this); only the simulated timing differs.

use tcudb_core::analyzer::{self, AnalyzedQuery};
use tcudb_core::batch::TupleBatch;
use tcudb_core::relops::{self, FinalizeOptions};
use tcudb_device::{CostModel, DeviceProfile, ExecutionTimeline, Phase};
use tcudb_sql::{parse, BinOp};
use tcudb_storage::{Catalog, CatalogSnapshot, SharedCatalog, Table};
use tcudb_types::{TcuError, TcuResult, Value};

/// Result of one YDB query execution.
#[derive(Debug, Clone)]
pub struct YdbOutput {
    /// The result rows (identical to TCUDB's answer for the same query).
    pub table: Table,
    /// Simulated per-phase timing breakdown (HashJoin, GroupBy+Aggregation,
    /// GPU memory copies, …).
    pub timeline: ExecutionTimeline,
}

impl YdbOutput {
    /// Total simulated execution time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.timeline.total_seconds()
    }
}

/// Configuration of the YDB baseline engine.
#[derive(Debug, Clone)]
pub struct YdbConfig {
    /// The simulated GPU.
    pub device: DeviceProfile,
    /// Return only the matched-tuple count (see
    /// `tcudb_core::EngineConfig::count_only`).
    pub count_only: bool,
}

impl Default for YdbConfig {
    fn default() -> Self {
        YdbConfig {
            device: DeviceProfile::rtx_3090(),
            count_only: false,
        }
    }
}

/// The YDB-style GPU query engine.
///
/// Shares the snapshot API of the TCUDB engine: queries pin an immutable
/// [`CatalogSnapshot`] for their lifetime and writes (all `&self`)
/// publish new snapshots, so one `YdbEngine` can serve concurrent
/// threads.
#[derive(Debug, Default, Clone)]
pub struct YdbEngine {
    shared: SharedCatalog,
    config: YdbConfig,
}

impl YdbEngine {
    /// Create an engine for a device.
    pub fn new(config: YdbConfig) -> YdbEngine {
        YdbEngine {
            shared: SharedCatalog::default(),
            config,
        }
    }

    /// Create an engine for a specific device profile.
    pub fn for_device(device: DeviceProfile) -> YdbEngine {
        YdbEngine::new(YdbConfig {
            device,
            ..YdbConfig::default()
        })
    }

    /// Register (or replace) a table, publishing a new catalog snapshot.
    pub fn register_table(&self, table: Table) {
        self.shared.update(|c| c.register(table));
    }

    /// Share a catalog built elsewhere (comparison experiments register the
    /// data once and hand the same catalog to every engine); publishes a
    /// new snapshot.
    pub fn set_catalog(&self, catalog: Catalog) {
        self.shared.replace(catalog);
    }

    /// Pin the current catalog snapshot.
    pub fn catalog(&self) -> std::sync::Arc<CatalogSnapshot> {
        self.shared.snapshot()
    }

    /// Mutable configuration access.
    pub fn config_mut(&mut self) -> &mut YdbConfig {
        &mut self.config
    }

    /// Execute a SQL query through the conventional GPU pipeline.
    pub fn execute(&self, sql: &str) -> TcuResult<YdbOutput> {
        let stmt = parse(sql)?;
        let snapshot = self.shared.snapshot();
        let analyzed = analyzer::analyze(&stmt, snapshot.catalog())?;
        self.execute_analyzed(&analyzed)
    }

    /// Execute an already-analyzed query.
    pub fn execute_analyzed(&self, analyzed: &AnalyzedQuery) -> TcuResult<YdbOutput> {
        let cost = CostModel::new(self.config.device.clone());
        let mut timeline = ExecutionTimeline::new();

        // Copy the referenced columns to the device (column-store: only the
        // touched columns cross PCIe).
        let mut touched_bytes = 0usize;
        for bound in &analyzed.tables {
            touched_bytes += bound.table.num_rows() * 8 * 2;
        }
        timeline.record_detail(
            Phase::MemcpyHostToDevice,
            "copy columns to device",
            cost.h2d_seconds(touched_bytes as f64),
        );

        // Scan + filter.
        let surviving = relops::apply_filters(analyzed)?;
        for (ti, bound) in analyzed.tables.iter().enumerate() {
            if !analyzed.filters_for_table(ti).is_empty() {
                timeline.record_detail(
                    Phase::ScanFilter,
                    format!("scan {}", bound.binding),
                    cost.gpu_scan_seconds(bound.table.num_rows(), 8),
                );
            }
        }

        // Joins in greedy connectivity order (same order TCUDB uses).
        let mut batch: TupleBatch;
        let mut joined: Vec<usize>;
        if analyzed.tables.len() == 1 {
            joined = vec![0];
            batch = TupleBatch::from_rows(&surviving[0])?;
        } else {
            let order = join_order(analyzed)?;
            joined = vec![order[0]];
            batch = TupleBatch::from_rows(&surviving[order[0]])?;
            for &next in order.iter().skip(1) {
                let (pred, joined_is_left) = analyzed
                    .joins
                    .iter()
                    .find_map(|j| {
                        if j.left.0 == next && joined.contains(&j.right.0) {
                            Some((j, false))
                        } else if j.right.0 == next && joined.contains(&j.left.0) {
                            Some((j, true))
                        } else {
                            None
                        }
                    })
                    .ok_or_else(|| TcuError::Plan("disconnected join graph".into()))?;
                let (jt, jcol, ncol) = if joined_is_left {
                    (pred.left.0, pred.left.1.clone(), pred.right.1.clone())
                } else {
                    (pred.right.0, pred.right.1.clone(), pred.left.1.clone())
                };
                let op = if joined_is_left {
                    pred.op
                } else {
                    pred.op.flip()
                };

                let jpos = joined.iter().position(|&t| t == jt).unwrap();
                let jtable = &analyzed.tables[jt].table;
                let jci = jtable.schema().require(&jcol)?;
                let jcolumn = jtable.column(jci);
                let left_keys: Vec<Value> = batch
                    .col(jpos)
                    .iter()
                    .map(|&r| jcolumn.value(r as usize))
                    .collect();
                let ntable = &analyzed.tables[next].table;
                let nci = ntable.schema().require(&ncol)?;
                let right_rows = &surviving[next];
                let right_keys: Vec<Value> = right_rows
                    .iter()
                    .map(|&r| ntable.column(nci).value(r))
                    .collect();

                let left_col = tcudb_storage::Column::from_values(
                    left_keys
                        .iter()
                        .find_map(|v| v.data_type())
                        .unwrap_or(tcudb_types::DataType::Int64),
                    &left_keys,
                )?;
                let right_col = tcudb_storage::Column::from_values(
                    right_keys
                        .iter()
                        .find_map(|v| v.data_type())
                        .unwrap_or(tcudb_types::DataType::Int64),
                    &right_keys,
                )?;
                let all_left: Vec<usize> = (0..left_keys.len()).collect();
                let all_right: Vec<usize> = (0..right_keys.len()).collect();
                let pairs = if op == BinOp::Eq {
                    relops::hash_join_pairs(&left_col, &all_left, &right_col, &all_right)
                } else {
                    relops::nonequi_join_pairs(&left_col, &all_left, &right_col, &all_right, op)?
                };
                timeline.record_detail(
                    Phase::HashJoin,
                    format!(
                        "hash join {} ⋈ {} ({} x {} → {})",
                        analyzed.tables[jt].binding,
                        analyzed.tables[next].binding,
                        left_keys.len(),
                        right_keys.len(),
                        pairs.len()
                    ),
                    cost.gpu_hash_join_seconds(left_keys.len(), right_keys.len(), pairs.len()),
                );

                joined.push(next);
                batch = batch.extend_join(&pairs, right_rows)?;
            }
        }

        // Separate group-by / aggregation kernels (the part TCUDB fuses).
        if analyzed.stmt.has_aggregates() || !analyzed.stmt.group_by.is_empty() {
            let groups = analyzed.stmt.group_by.len().max(1) * 32;
            timeline.record_detail(
                Phase::GroupByAggregation,
                format!("group-by + aggregation over {} tuples", batch.len()),
                cost.gpu_groupby_agg_seconds(batch.len(), groups.min(batch.len().max(1))),
            );
        }

        // Results stay resident in device memory (the in-GPU-memory
        // architecture of §2.2); only a result handle returns to the host.
        timeline.record_detail(
            Phase::MemcpyDeviceToHost,
            "copy result handle",
            cost.d2h_seconds(4096.0),
        );

        // Remap the batch to bound-table order and materialise the answer
        // through the vectorized output pipeline (no tensor kernels: YDB
        // models group-by as the separate GPU operator charged above).
        let batch = batch.remap_slots(&joined, analyzed.tables.len());
        let table = if self.config.count_only {
            relops::table_from_rows(
                "result_count",
                &["matched_tuples".to_string()],
                vec![vec![Value::Int(batch.len() as i64)]],
            )?
        } else {
            relops::finalize_output_columnar(analyzed, &batch, &FinalizeOptions::baseline())?.0
        };

        Ok(YdbOutput { table, timeline })
    }
}

/// Greedy join order (same heuristic as the TCUDB executor).
fn join_order(analyzed: &AnalyzedQuery) -> TcuResult<Vec<usize>> {
    let n = analyzed.tables.len();
    let degree = |i: usize| analyzed.joins_for_table(i).len();
    let start = (0..n).max_by_key(|&i| degree(i)).unwrap_or(0);
    let mut order = vec![start];
    while order.len() < n {
        let next = (0..n).find(|i| {
            !order.contains(i)
                && analyzed.joins.iter().any(|j| {
                    (j.left.0 == *i && order.contains(&j.right.0))
                        || (j.right.0 == *i && order.contains(&j.left.0))
                })
        });
        match next {
            Some(t) => order.push(t),
            None => return Err(TcuError::Plan("disconnected join graph".into())),
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> YdbEngine {
        let e = YdbEngine::default();
        e.register_table(
            Table::from_int_columns(
                "A",
                &[("id", vec![1, 1, 2, 3]), ("val", vec![10, 11, 20, 30])],
            )
            .unwrap(),
        );
        e.register_table(
            Table::from_int_columns("B", &[("id", vec![1, 2, 2]), ("val", vec![5, 6, 7])]).unwrap(),
        );
        e
    }

    #[test]
    fn join_results_match_expected() {
        let out = engine()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
        assert!(out.timeline.seconds_in(Phase::HashJoin) > 0.0);
        assert_eq!(out.timeline.seconds_in(Phase::TcuKernel), 0.0);
        assert!(out.total_seconds() > 0.0);
    }

    #[test]
    fn aggregation_charges_separate_kernel() {
        let out = engine()
            .execute("SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val")
            .unwrap();
        assert_eq!(out.table.num_rows(), 3);
        assert!(out.timeline.seconds_in(Phase::GroupByAggregation) > 0.0);
        assert_eq!(out.table.row(0)[0].as_f64().unwrap(), 21.0);
    }

    #[test]
    fn single_table_query_works() {
        let out = engine()
            .execute("SELECT A.val FROM A WHERE A.val > 15")
            .unwrap();
        assert_eq!(out.table.num_rows(), 2);
    }

    #[test]
    fn non_equi_join_works() {
        let out = engine()
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id < B.id")
            .unwrap();
        assert_eq!(out.table.num_rows(), 4);
    }

    #[test]
    fn count_only_mode() {
        let mut e = engine();
        e.config_mut().count_only = true;
        let out = e
            .execute("SELECT A.val, B.val FROM A, B WHERE A.id = B.id")
            .unwrap();
        assert_eq!(out.table.row(0)[0], Value::Int(4));
    }

    #[test]
    fn slower_device_is_slower() {
        let sql = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";
        let fast = engine().execute(sql).unwrap().total_seconds();
        let slow_engine = YdbEngine::for_device(DeviceProfile::rtx_2080());
        slow_engine.set_catalog(engine().catalog().catalog().clone());
        let slow = slow_engine.execute(sql).unwrap().total_seconds();
        assert!(slow > fast);
    }
}
