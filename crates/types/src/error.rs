//! Common error type used across the TCUDB workspace.

use std::fmt;

/// Convenience alias for `Result<T, TcuError>`.
pub type TcuResult<T> = Result<T, TcuError>;

/// Errors that can be produced by any layer of the TCUDB stack.
#[derive(Debug, Clone, PartialEq)]
pub enum TcuError {
    /// A SQL string could not be tokenized or parsed.
    Parse(String),
    /// A query referenced a table or column that does not exist, or used
    /// types in an unsupported way.
    Analysis(String),
    /// The query planner / optimizer could not produce a plan.
    Plan(String),
    /// A runtime failure while executing a physical plan.
    Execution(String),
    /// The requested precision cannot represent the input data without
    /// overflow (feasibility test failure, §4.2.1 of the paper).
    PrecisionOverflow(String),
    /// A matrix / tensor operation was invoked with incompatible shapes.
    ShapeMismatch {
        /// The shape the operation required, rendered as text.
        expected: String,
        /// The shape it was given.
        got: String,
    },
    /// The simulated device ran out of device memory and no blocked plan
    /// was available.
    DeviceMemoryExceeded {
        /// Bytes the plan needed resident on the device.
        required: usize,
        /// Bytes the device actually has.
        available: usize,
    },
    /// Error touching the filesystem (CSV import/export).
    Io(String),
    /// A storage-layer I/O failure the caller may retry: the medium is
    /// expected to recover (interrupted syscall, transient backend
    /// outage).  Permanent damage — corruption, missing files — stays
    /// [`TcuError::Io`].
    IoTransient(String),
    /// The query was cancelled by its session or the server before it
    /// finished.  Execution unwound cleanly at a cancellation checkpoint;
    /// no partial result escaped.
    Cancelled(String),
    /// The query ran past its deadline and was abandoned at a
    /// cancellation checkpoint.
    DeadlineExceeded(String),
    /// The server refused to enqueue the query: the queue was at its
    /// depth bound or the head had waited past the shed threshold.
    /// Back off and retry; nothing was executed.
    Overloaded(String),
    /// Catch-all for invalid arguments to public APIs.
    InvalidArgument(String),
}

impl TcuError {
    /// True for failures worth retrying with backoff: transient storage
    /// faults and server overload rejections.  Cancellation, deadlines,
    /// corruption and semantic errors are permanent for the attempt.
    pub fn is_transient(&self) -> bool {
        matches!(self, TcuError::IoTransient(_) | TcuError::Overloaded(_))
    }
}

impl fmt::Display for TcuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcuError::Parse(msg) => write!(f, "parse error: {msg}"),
            TcuError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            TcuError::Plan(msg) => write!(f, "planning error: {msg}"),
            TcuError::Execution(msg) => write!(f, "execution error: {msg}"),
            TcuError::PrecisionOverflow(msg) => write!(f, "precision overflow: {msg}"),
            TcuError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TcuError::DeviceMemoryExceeded {
                required,
                available,
            } => write!(
                f,
                "device memory exceeded: required {required} bytes, available {available} bytes"
            ),
            TcuError::Io(msg) => write!(f, "io error: {msg}"),
            TcuError::IoTransient(msg) => write!(f, "transient io error: {msg}"),
            TcuError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
            TcuError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
            TcuError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            TcuError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TcuError {}

impl From<std::io::Error> for TcuError {
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            // The kinds the OS hands back for "try again", not damage.
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                TcuError::IoTransient(e.to_string())
            }
            _ => TcuError::Io(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let cases: Vec<(TcuError, &str)> = vec![
            (TcuError::Parse("bad token".into()), "parse error"),
            (TcuError::Analysis("no table".into()), "analysis error"),
            (TcuError::Plan("no plan".into()), "planning error"),
            (TcuError::Execution("boom".into()), "execution error"),
            (
                TcuError::PrecisionOverflow("too big".into()),
                "precision overflow",
            ),
            (
                TcuError::ShapeMismatch {
                    expected: "2x2".into(),
                    got: "3x3".into(),
                },
                "shape mismatch",
            ),
            (
                TcuError::DeviceMemoryExceeded {
                    required: 10,
                    available: 5,
                },
                "device memory exceeded",
            ),
            (TcuError::Io("disk".into()), "io error"),
            (TcuError::IoTransient("blip".into()), "transient io error"),
            (TcuError::Cancelled("by session".into()), "cancelled"),
            (
                TcuError::DeadlineExceeded("10ms".into()),
                "deadline exceeded",
            ),
            (TcuError::Overloaded("queue full".into()), "overloaded"),
            (TcuError::InvalidArgument("nope".into()), "invalid argument"),
        ];
        for (err, prefix) in cases {
            assert!(
                err.to_string().starts_with(prefix),
                "{err} should start with {prefix}"
            );
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: TcuError = io.into();
        assert!(matches!(err, TcuError::Io(_)));
        assert!(!err.is_transient());
    }

    #[test]
    fn retryable_io_kinds_convert_to_transient() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::WouldBlock,
            std::io::ErrorKind::TimedOut,
        ] {
            let err: TcuError = std::io::Error::new(kind, "blip").into();
            assert!(matches!(err, TcuError::IoTransient(_)), "{kind:?}");
            assert!(err.is_transient());
        }
    }

    #[test]
    fn transient_taxonomy_is_exactly_io_and_overload() {
        assert!(TcuError::IoTransient("x".into()).is_transient());
        assert!(TcuError::Overloaded("x".into()).is_transient());
        assert!(!TcuError::Cancelled("x".into()).is_transient());
        assert!(!TcuError::DeadlineExceeded("x".into()).is_transient());
        assert!(!TcuError::Io("x".into()).is_transient());
        assert!(!TcuError::Execution("x".into()).is_transient());
    }
}
