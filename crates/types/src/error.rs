//! Common error type used across the TCUDB workspace.

use std::fmt;

/// Convenience alias for `Result<T, TcuError>`.
pub type TcuResult<T> = Result<T, TcuError>;

/// Errors that can be produced by any layer of the TCUDB stack.
#[derive(Debug, Clone, PartialEq)]
pub enum TcuError {
    /// A SQL string could not be tokenized or parsed.
    Parse(String),
    /// A query referenced a table or column that does not exist, or used
    /// types in an unsupported way.
    Analysis(String),
    /// The query planner / optimizer could not produce a plan.
    Plan(String),
    /// A runtime failure while executing a physical plan.
    Execution(String),
    /// The requested precision cannot represent the input data without
    /// overflow (feasibility test failure, §4.2.1 of the paper).
    PrecisionOverflow(String),
    /// A matrix / tensor operation was invoked with incompatible shapes.
    ShapeMismatch {
        /// The shape the operation required, rendered as text.
        expected: String,
        /// The shape it was given.
        got: String,
    },
    /// The simulated device ran out of device memory and no blocked plan
    /// was available.
    DeviceMemoryExceeded {
        /// Bytes the plan needed resident on the device.
        required: usize,
        /// Bytes the device actually has.
        available: usize,
    },
    /// Error touching the filesystem (CSV import/export).
    Io(String),
    /// Catch-all for invalid arguments to public APIs.
    InvalidArgument(String),
}

impl fmt::Display for TcuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcuError::Parse(msg) => write!(f, "parse error: {msg}"),
            TcuError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            TcuError::Plan(msg) => write!(f, "planning error: {msg}"),
            TcuError::Execution(msg) => write!(f, "execution error: {msg}"),
            TcuError::PrecisionOverflow(msg) => write!(f, "precision overflow: {msg}"),
            TcuError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            TcuError::DeviceMemoryExceeded {
                required,
                available,
            } => write!(
                f,
                "device memory exceeded: required {required} bytes, available {available} bytes"
            ),
            TcuError::Io(msg) => write!(f, "io error: {msg}"),
            TcuError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TcuError {}

impl From<std::io::Error> for TcuError {
    fn from(e: std::io::Error) -> Self {
        TcuError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let cases: Vec<(TcuError, &str)> = vec![
            (TcuError::Parse("bad token".into()), "parse error"),
            (TcuError::Analysis("no table".into()), "analysis error"),
            (TcuError::Plan("no plan".into()), "planning error"),
            (TcuError::Execution("boom".into()), "execution error"),
            (
                TcuError::PrecisionOverflow("too big".into()),
                "precision overflow",
            ),
            (
                TcuError::ShapeMismatch {
                    expected: "2x2".into(),
                    got: "3x3".into(),
                },
                "shape mismatch",
            ),
            (
                TcuError::DeviceMemoryExceeded {
                    required: 10,
                    available: 5,
                },
                "device memory exceeded",
            ),
            (TcuError::Io("disk".into()), "io error"),
            (TcuError::InvalidArgument("nope".into()), "invalid argument"),
        ];
        for (err, prefix) in cases {
            assert!(
                err.to_string().starts_with(prefix),
                "{err} should start with {prefix}"
            );
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: TcuError = io.into();
        assert!(matches!(err, TcuError::Io(_)));
    }
}
