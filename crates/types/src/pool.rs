//! The shared workspace worker pool.
//!
//! One process-wide thread budget covers **both** kinds of parallelism in
//! TCUDB:
//!
//! * **inter-query** — `tcudb-serve`'s scheduler workers are leased from
//!   the pool via [`WorkerPool::spawn_worker`] and mark themselves busy
//!   (via [`WorkerPool::busy_guard`]) while a query executes;
//! * **intra-query** — the executor's per-chunk scan/filter/join morsels
//!   and the tensor engine's row-panel shards run through
//!   [`WorkerPool::run_chunks`], whose helper threads are bounded by
//!   whatever of the budget the serve workers are not currently using
//!   ([`WorkerPool::scoped_parallelism`]).
//!
//! Because both sides draw on the same accounting, a box saturated with
//! admitted queries stops fanning morsels out (each query runs its
//! morsels inline on its own worker), while an idle box gives a single
//! query the whole budget. Admission control prices queries in working-set
//! bytes *after* zone-map pruning, so the budget is spent on chunks that
//! will actually be scanned.
//!
//! [`WorkerPool::run_chunks`] is deterministic by construction: morsel
//! results are slotted by index and returned in index order, so chunked
//! parallel execution is byte-identical to an inline loop regardless of
//! thread count or scheduling (the `chunked_oracle` proptest pins this).

use crate::error::{TcuError, TcuResult};
use crate::sync::locked;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::JoinHandle;

#[derive(Default)]
struct PoolState {
    /// Long-lived workers leased by the serving layer.
    leased: usize,
    /// Leased workers currently executing a query.
    busy: usize,
    /// Scope helper threads currently running morsels.
    scoped: usize,
    /// Total morsels executed through the pool (telemetry).
    morsels: u64,
}

/// The shared worker pool: a thread budget plus accounting, a factory for
/// leased long-lived workers, and a deterministic scoped morsel runner.
pub struct WorkerPool {
    budget: usize,
    // lint: leaf-lock accounting only — held for counter updates, never
    // across another acquisition, a wait, or user code
    state: Mutex<PoolState>,
}

/// Outcome of one [`WorkerPool::run_chunks`] call: how many morsels ran
/// and on how many threads (caller included).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselRun {
    /// Morsels executed.
    pub morsels: u64,
    /// Threads that participated (1 = ran inline on the caller).
    pub threads: usize,
}

/// Marks one leased worker busy for the guard's lifetime.
pub struct BusyGuard<'a> {
    pool: &'a WorkerPool,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        let mut st = locked(&self.pool.state);
        st.busy = st.busy.saturating_sub(1);
    }
}

/// Decrements the lease count when a leased worker's loop exits (runs on
/// the worker thread, even on unwind).
struct LeaseGuard<'a> {
    pool: &'a WorkerPool,
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        let mut st = locked(&self.pool.state);
        st.leased = st.leased.saturating_sub(1);
    }
}

impl WorkerPool {
    /// A pool with an explicit thread budget (tests / benchmarks).
    pub fn with_budget(budget: usize) -> WorkerPool {
        WorkerPool {
            budget: budget.max(1),
            state: Mutex::new(PoolState::default()),
        }
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism on first use.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            WorkerPool::with_budget(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Total thread budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Workers currently leased to long-lived loops.
    pub fn leased(&self) -> usize {
        locked(&self.state).leased
    }

    /// Total morsels executed through the pool so far.
    pub fn morsels_run(&self) -> u64 {
        locked(&self.state).morsels
    }

    /// How many threads a scoped morsel run may use right now: the budget
    /// minus workers busy on queries and helpers already fanned out.
    /// Always at least 1 (the caller itself).
    pub fn scoped_parallelism(&self) -> usize {
        let st = locked(&self.state);
        self.budget.saturating_sub(st.busy + st.scoped).max(1)
    }

    /// Lease a long-lived named worker thread from the pool. The thread
    /// runs `f` to completion; the lease is released when it exits. Used
    /// by `tcudb-serve` so its scheduler workers and the executor's
    /// morsel helpers share one budget.
    pub fn spawn_worker<F>(&'static self, name: String, f: F) -> TcuResult<JoinHandle<()>>
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut st = locked(&self.state);
            st.leased += 1;
        }
        let spawned = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                let _lease = LeaseGuard { pool: self };
                f();
            });
        match spawned {
            Ok(handle) => Ok(handle),
            Err(e) => {
                let mut st = locked(&self.state);
                st.leased = st.leased.saturating_sub(1);
                Err(TcuError::Execution(format!(
                    "spawning pool worker {name} failed: {e}"
                )))
            }
        }
    }

    /// Mark the calling (leased) worker busy on a query until the guard
    /// drops — scoped morsel runs elsewhere see a smaller budget.
    pub fn busy_guard(&self) -> BusyGuard<'_> {
        let mut st = locked(&self.state);
        st.busy += 1;
        BusyGuard { pool: self }
    }

    /// Run `count` index-addressed morsels on up to `threads` threads
    /// (caller included) and return the results **in index order**.
    ///
    /// `threads <= 1` (or a single morsel) runs inline with zero
    /// synchronisation. Parallel runs hand out indices through an atomic
    /// counter and slot results by index, so output order — and therefore
    /// every downstream concatenation — is identical to the inline path.
    pub fn run_chunks<R, F>(&self, count: usize, threads: usize, f: F) -> (Vec<R>, MorselRun)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if count == 0 {
            return (Vec::new(), MorselRun::default());
        }
        let threads = threads.clamp(1, count);
        if threads == 1 {
            let out: Vec<R> = (0..count).map(&f).collect();
            self.note_morsels(count as u64, 0);
            return (
                out,
                MorselRun {
                    morsels: count as u64,
                    threads: 1,
                },
            );
        }
        let helpers = threads - 1;
        {
            let mut st = locked(&self.state);
            st.scoped += helpers;
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            let r = f(i);
            *locked(&slots[i]) = Some(r);
        };
        std::thread::scope(|s| {
            let work = &work;
            for w in 1..threads {
                s.spawn(move || work(w));
            }
            work(0);
        });
        {
            let mut st = locked(&self.state);
            st.scoped = st.scoped.saturating_sub(helpers);
        }
        self.note_morsels(count as u64, 0);
        let out: Vec<R> = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    // lint: allow(panic) unreachable: the scope above joins
                    // every helper, and each index is claimed exactly once
                    .expect("morsel slot filled before scope exit")
            })
            .collect();
        (
            out,
            MorselRun {
                morsels: count as u64,
                threads,
            },
        )
    }

    fn note_morsels(&self, n: u64, _threads: usize) {
        let mut st = locked(&self.state);
        st.morsels += n;
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = locked(&self.state);
        write!(
            f,
            "WorkerPool(budget {}, leased {}, busy {}, scoped {})",
            self.budget, st.leased, st.busy, st.scoped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_parallel_runs_are_identical() {
        let pool = WorkerPool::with_budget(4);
        let f = |i: usize| (0..=i).sum::<usize>();
        let (inline, r1) = pool.run_chunks(37, 1, f);
        assert_eq!(r1.threads, 1);
        for threads in [2, 3, 8] {
            let (par, run) = pool.run_chunks(37, threads, f);
            assert_eq!(par, inline, "threads={threads} diverged");
            assert_eq!(run.threads, threads.min(37));
            assert_eq!(run.morsels, 37);
        }
        assert_eq!(pool.morsels_run(), 37 * 4);
    }

    #[test]
    fn empty_and_single_morsel_runs() {
        let pool = WorkerPool::with_budget(2);
        let (out, run) = pool.run_chunks(0, 4, |i| i);
        assert!(out.is_empty());
        assert_eq!(run, MorselRun::default());
        let (out, run) = pool.run_chunks(1, 4, |i| i * 10);
        assert_eq!(out, vec![0]);
        assert_eq!(run.threads, 1);
    }

    #[test]
    fn busy_workers_shrink_scoped_parallelism() {
        let pool = WorkerPool::with_budget(3);
        assert_eq!(pool.scoped_parallelism(), 3);
        let g1 = pool.busy_guard();
        let g2 = pool.busy_guard();
        assert_eq!(pool.scoped_parallelism(), 1);
        drop(g1);
        assert_eq!(pool.scoped_parallelism(), 2);
        drop(g2);
        // Never below 1: the caller always participates.
        let _gs: Vec<_> = (0..9).map(|_| pool.busy_guard()).collect();
        assert_eq!(pool.scoped_parallelism(), 1);
    }

    #[test]
    fn leased_workers_are_tracked_until_exit() {
        let pool = WorkerPool::shared();
        let before = pool.leased();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let h = pool
            .spawn_worker("tcudb-pool-test".into(), move || {
                rx.recv().ok();
            })
            .unwrap();
        assert_eq!(pool.leased(), before + 1);
        tx.send(()).unwrap();
        h.join().unwrap();
        assert_eq!(pool.leased(), before);
    }
}
