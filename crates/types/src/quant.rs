//! Int8 / Int4 quantisation helpers.
//!
//! When the feasibility test determines that a column's values fit the
//! int8 or int4 range, TCUDB's code generator emits integer GEMM kernels
//! (the `s8`/`s4` WMMA fragments on real hardware).  These helpers perform
//! the corresponding clamping casts and provide symmetric scale-based
//! quantisation for value columns that do not naturally fit the integer
//! range but where the optimizer accepts a lossy low-precision plan.

/// Clamp-cast an `f64` to the int8 range.
pub fn to_i8_saturating(v: f64) -> i8 {
    if v.is_nan() {
        return 0;
    }
    v.round().clamp(i8::MIN as f64, i8::MAX as f64) as i8
}

/// Clamp-cast an `f64` to the int4 range (−8 ..= 7), returned in an `i8`.
pub fn to_i4_saturating(v: f64) -> i8 {
    if v.is_nan() {
        return 0;
    }
    v.round().clamp(-8.0, 7.0) as i8
}

/// Is `v` exactly representable as int8 (integral and in range)?
pub fn fits_i8_exact(v: f64) -> bool {
    v.fract() == 0.0 && (-128.0..=127.0).contains(&v)
}

/// Is `v` exactly representable as int4 (integral and in −8 ..= 7)?
pub fn fits_i4_exact(v: f64) -> bool {
    v.fract() == 0.0 && (-8.0..=7.0).contains(&v)
}

/// Parameters of a symmetric linear quantisation `q = round(v / scale)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale factor so that `q * scale ≈ v`.
    pub scale: f64,
    /// Number of integer levels on each side of zero (127 for int8, 7 for
    /// int4).
    pub levels: i32,
}

impl QuantParams {
    /// Compute symmetric quantisation parameters for data whose maximum
    /// absolute value is `abs_max`, targeting `levels` quantisation levels.
    pub fn symmetric(abs_max: f64, levels: i32) -> QuantParams {
        let abs_max = if abs_max <= 0.0 { 1.0 } else { abs_max };
        QuantParams {
            scale: abs_max / levels as f64,
            levels,
        }
    }

    /// Int8 parameters for the given dynamic range.
    pub fn int8(abs_max: f64) -> QuantParams {
        QuantParams::symmetric(abs_max, 127)
    }

    /// Int4 parameters for the given dynamic range.
    pub fn int4(abs_max: f64) -> QuantParams {
        QuantParams::symmetric(abs_max, 7)
    }

    /// Quantise a value.
    pub fn quantize(&self, v: f64) -> i32 {
        let q = (v / self.scale).round();
        q.clamp(-(self.levels as f64), self.levels as f64) as i32
    }

    /// De-quantise a value.
    pub fn dequantize(&self, q: i32) -> f64 {
        q as f64 * self.scale
    }

    /// De-quantise the result of a dot product of length `_k` between two
    /// operands quantised with `self` and `other`.
    pub fn dequantize_product(&self, other: &QuantParams, acc: i64) -> f64 {
        acc as f64 * self.scale * other.scale
    }
}

/// Quantise a slice of values with the given parameters.
pub fn quantize_slice(values: &[f64], params: &QuantParams) -> Vec<i32> {
    values.iter().map(|&v| params.quantize(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturating_casts_clamp() {
        assert_eq!(to_i8_saturating(1000.0), 127);
        assert_eq!(to_i8_saturating(-1000.0), -128);
        assert_eq!(to_i8_saturating(42.4), 42);
        assert_eq!(to_i4_saturating(100.0), 7);
        assert_eq!(to_i4_saturating(-100.0), -8);
        assert_eq!(to_i4_saturating(3.0), 3);
        assert_eq!(to_i8_saturating(f64::NAN), 0);
        assert_eq!(to_i4_saturating(f64::NAN), 0);
    }

    #[test]
    fn exact_fit_predicates() {
        assert!(fits_i8_exact(127.0));
        assert!(!fits_i8_exact(128.0));
        assert!(!fits_i8_exact(1.5));
        assert!(fits_i4_exact(-8.0));
        assert!(!fits_i4_exact(8.0));
    }

    #[test]
    fn symmetric_quantisation_round_trip_error() {
        let params = QuantParams::int8(100.0);
        for v in [-100.0, -50.0, 0.0, 13.7, 99.9] {
            let q = params.quantize(v);
            let back = params.dequantize(q);
            assert!((back - v).abs() <= params.scale / 2.0 + 1e-9, "v={v}");
        }
    }

    #[test]
    fn zero_range_does_not_divide_by_zero() {
        let params = QuantParams::int8(0.0);
        assert_eq!(params.quantize(0.0), 0);
        assert_eq!(params.dequantize(0), 0.0);
    }

    #[test]
    fn product_dequantisation() {
        let a = QuantParams::int8(10.0);
        let b = QuantParams::int8(20.0);
        // 5.0 * 10.0 = 50.0
        let qa = a.quantize(5.0) as i64;
        let qb = b.quantize(10.0) as i64;
        let approx = a.dequantize_product(&b, qa * qb);
        assert!((approx - 50.0).abs() < 1.0, "approx={approx}");
    }

    proptest! {
        #[test]
        fn prop_int8_quant_error_bounded(v in -1000.0f64..1000.0) {
            let params = QuantParams::int8(1000.0);
            let back = params.dequantize(params.quantize(v));
            prop_assert!((back - v).abs() <= params.scale / 2.0 + 1e-9);
        }

        #[test]
        fn prop_quantize_is_monotonic(a in -500.0f64..500.0, b in -500.0f64..500.0) {
            let params = QuantParams::int8(500.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(params.quantize(lo) <= params.quantize(hi));
        }
    }
}
