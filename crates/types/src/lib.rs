#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tcudb-types
//!
//! Foundational scalar types shared by every TCUDB crate:
//!
//! * [`DataType`] / [`Value`] — the dynamic value model used by the storage
//!   layer, the SQL layer and the execution engines.
//! * [`F16`] — a software emulation of IEEE-754 binary16, the input
//!   precision of NVIDIA Tensor Core Units.  TCUDB's feasibility test and
//!   the MAPE experiment (Table 1 of the paper) depend on faithful
//!   half-precision rounding behaviour.
//! * [`Precision`] — the candidate tensor-core input precisions
//!   (fp16 / int8 / int4 / fp32 fallback) considered by the mixed-precision
//!   query optimizer.
//! * [`quant`] — int8 / int4 quantisation helpers used by the low-precision
//!   execution paths.
//! * [`sync`] — poison-recovering lock helpers used by every crate that
//!   holds `std::sync` state (serving layer, caches, shared catalog).
//! * [`TcuError`] — the common error type.

pub mod error;
pub mod f16;
pub mod pool;
pub mod precision;
pub mod quant;
pub mod sync;
pub mod value;

pub use error::{TcuError, TcuResult};
pub use f16::F16;
pub use pool::{MorselRun, WorkerPool};
pub use precision::Precision;
pub use value::{DataType, Value};
