//! Candidate tensor-core input precisions.
//!
//! The TCUDB query optimizer (§4.2.1 of the paper) chooses the *most
//! compact* input data type that can represent the operands without losing
//! required accuracy: 16-bit half floats, 8-bit integers, or 4-bit
//! integers.  When none of those suffice, the engine falls back to the
//! conventional CPU/GPU plan (represented here as [`Precision::Fp32`],
//! which tensor cores of the paper's generation cannot consume).

use crate::f16::F16_MAX;
use serde::{Deserialize, Serialize};

/// An input precision considered by the mixed-precision optimizer.
///
/// Ordered from most compact to least compact.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Precision {
    /// 4-bit signed integer (range −8 ..= 7). Supported by Turing/Ampere
    /// TCUs for experimental int4 GEMM.
    Int4,
    /// 8-bit signed integer (range −128 ..= 127), accumulated in int32.
    Int8,
    /// IEEE-754 binary16, accumulated in fp32.  The default TCU precision.
    #[default]
    Half,
    /// 32-bit float: *not* a TCU input type on the paper's hardware; used
    /// to denote the CPU/GPU fallback path.
    Fp32,
}

impl Precision {
    /// Size of one element of this precision in bytes (int4 is counted as
    /// half a byte, rounded up per element when stored unpacked; we report
    /// the packed size used for data-movement estimates).
    pub fn size_bytes(self) -> f64 {
        match self {
            Precision::Int4 => 0.5,
            Precision::Int8 => 1.0,
            Precision::Half => 2.0,
            Precision::Fp32 => 4.0,
        }
    }

    /// Maximum magnitude exactly representable for *integer* payloads.
    ///
    /// For `Half` this is 2^11 = 2048: every integer up to 2048 maps to a
    /// distinct binary16 value, beyond which consecutive integers start to
    /// collide (this is what produces the non-zero MAPE rows of Table 1).
    pub fn exact_int_limit(self) -> f64 {
        match self {
            Precision::Int4 => 7.0,
            Precision::Int8 => 127.0,
            Precision::Half => 2048.0,
            Precision::Fp32 => 16_777_216.0, // 2^24
        }
    }

    /// Maximum representable magnitude (values beyond this overflow).
    pub fn max_value(self) -> f64 {
        match self {
            Precision::Int4 => 7.0,
            Precision::Int8 => 127.0,
            Precision::Half => F16_MAX as f64,
            Precision::Fp32 => f32::MAX as f64,
        }
    }

    /// Is this a precision that the simulated TCU can consume directly?
    pub fn is_tcu_native(self) -> bool {
        !matches!(self, Precision::Fp32)
    }

    /// All TCU-native precisions ordered from most to least compact, the
    /// order in which the optimizer's feasibility test tries them
    /// (Figure 6: 4bit? → 8bit? → 16bit?).
    pub fn tcu_candidates() -> [Precision; 3] {
        [Precision::Int4, Precision::Int8, Precision::Half]
    }

    /// Pick the most compact TCU-native precision whose range covers
    /// `[min, max]` for exact-integer inputs, or `None` when no TCU type
    /// is feasible (the query then falls back to CPU/GPU execution).
    pub fn most_compact_for_range(min: f64, max: f64) -> Option<Precision> {
        let magnitude = min.abs().max(max.abs());
        Precision::tcu_candidates()
            .into_iter()
            .find(|p| magnitude <= p.exact_int_limit())
    }

    /// Like [`Precision::most_compact_for_range`] but allows lossy
    /// half-precision representation of large values as long as they do not
    /// overflow binary16.  Used when the optimizer is willing to trade a
    /// bounded relative error for TCU acceleration.
    pub fn most_compact_lossy_for_range(min: f64, max: f64) -> Option<Precision> {
        let magnitude = min.abs().max(max.abs());
        Precision::tcu_candidates()
            .into_iter()
            .find(|p| magnitude <= p.max_value())
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Int4 => "int4",
            Precision::Int8 => "int8",
            Precision::Half => "half",
            Precision::Fp32 => "fp32",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_monotonic() {
        assert!(Precision::Int4.size_bytes() < Precision::Int8.size_bytes());
        assert!(Precision::Int8.size_bytes() < Precision::Half.size_bytes());
        assert!(Precision::Half.size_bytes() < Precision::Fp32.size_bytes());
    }

    #[test]
    fn candidate_order_is_compact_first() {
        let c = Precision::tcu_candidates();
        assert_eq!(c[0], Precision::Int4);
        assert_eq!(c[1], Precision::Int8);
        assert_eq!(c[2], Precision::Half);
    }

    #[test]
    fn most_compact_selection() {
        assert_eq!(
            Precision::most_compact_for_range(0.0, 1.0),
            Some(Precision::Int4)
        );
        assert_eq!(
            Precision::most_compact_for_range(-100.0, 100.0),
            Some(Precision::Int8)
        );
        assert_eq!(
            Precision::most_compact_for_range(0.0, 2000.0),
            Some(Precision::Half)
        );
        // Beyond the exact-integer range of binary16 nothing qualifies.
        assert_eq!(Precision::most_compact_for_range(0.0, 1e6), None);
    }

    #[test]
    fn lossy_selection_allows_half_up_to_f16_max() {
        assert_eq!(
            Precision::most_compact_lossy_for_range(0.0, 60000.0),
            Some(Precision::Half)
        );
        assert_eq!(Precision::most_compact_lossy_for_range(0.0, 1e6), None);
    }

    #[test]
    fn tcu_native_flags() {
        assert!(Precision::Int4.is_tcu_native());
        assert!(Precision::Int8.is_tcu_native());
        assert!(Precision::Half.is_tcu_native());
        assert!(!Precision::Fp32.is_tcu_native());
    }

    #[test]
    fn display_names() {
        assert_eq!(Precision::Half.to_string(), "half");
        assert_eq!(Precision::Int8.to_string(), "int8");
        assert_eq!(Precision::Int4.to_string(), "int4");
        assert_eq!(Precision::Fp32.to_string(), "fp32");
    }
}
