//! Poison-recovering lock helpers and query-lifecycle primitives.
//!
//! `std::sync` poisons a lock when a thread panics while holding its
//! guard.  For the TCUDB serving layer, poisoning must never be fatal:
//! the protected state is either a pure cache (plan cache, encoding
//! cache) or scheduler bookkeeping whose invariants are re-established
//! on every pass, so the correct response to a poisoned lock is to clear
//! the flag and continue — not to `unwrap()` and turn one panicking
//! worker into whole-server death.
//!
//! These helpers are also what the `tcudb-analyze` lock-order rule keys
//! on: `locked(&self.state)` is recognised as an acquisition of `state`
//! exactly like a bare `self.state.lock()` would be, so migrating a call
//! site to the helpers never hides it from the static analysis.
//!
//! The second half of this module is the query-lifecycle layer:
//! [`CancellationToken`] (cooperative cancellation with a deterministic
//! cancel-at-Nth-checkpoint hook for the chaos tests), [`Deadline`]
//! (a wall-clock budget), and [`QueryContext`] bundling the two into the
//! value the executor, the tensor engine and the serving layer thread
//! through a query.  `CancelInner.state` is a **leaf lock**: no code may
//! acquire any other lock while holding it (the `tcudb-analyze`
//! lock-order pass enforces this), so a checkpoint probe can run from
//! inside any critical section without joining the lock-order graph.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use crate::{TcuError, TcuResult};

/// Lock a [`Mutex`], clearing poisoning instead of panicking.
pub fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Read-lock an [`RwLock`], clearing poisoning instead of panicking.
pub fn read_locked<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Write-lock an [`RwLock`], clearing poisoning instead of panicking.
pub fn write_locked<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Wait on a [`Condvar`], re-acquiring the guard and clearing poisoning
/// instead of panicking.
pub fn wait_on<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Wait on a [`Condvar`] with a timeout, re-acquiring the guard and
/// clearing poisoning instead of panicking.  Returns the guard and
/// whether the wait timed out — the shape background flusher loops
/// need: wake on signal *or* after the flush interval.
pub fn wait_on_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

// ---------------------------------------------------------------------------
// Query lifecycle: cancellation, deadlines, contexts
// ---------------------------------------------------------------------------

/// Shared state behind a [`CancellationToken`].
///
/// `state` is a leaf lock: it is never held across an acquisition of any
/// other lock, so probing it from arbitrary checkpoints cannot deadlock.
#[derive(Debug)]
struct CancelInner {
    // lint: leaf-lock probed from arbitrary call sites that may already
    // hold scheduler or catalog locks; nothing may be acquired under it
    state: Mutex<CancelState>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct CancelState {
    cancelled: bool,
    /// Total checkpoint probes observed (all clones, all threads).
    checks: u64,
    /// Deterministic chaos hook: flip to cancelled on the Nth probe.
    cancel_at_check: Option<u64>,
}

/// A cooperative cancellation flag shared by every clone.
///
/// Executors poll it at cancellation checkpoints (per filter table, per
/// join step, per finalize chunk, between tensor row-panel shards);
/// the serve layer's `Session::cancel` and drain timeout set it.  The
/// deterministic [`CancellationToken::cancel_at_check`] hook lets the
/// chaos oracle cancel at *every* checkpoint index in turn and assert
/// clean unwinding at each.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner {
            state: Mutex::new(CancelState::default()),
            changed: Condvar::new(),
        }
    }
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Request cancellation.  Every clone observes it at its next
    /// checkpoint; threads blocked in [`CancellationToken::wait_cancelled`]
    /// wake immediately.  Idempotent.
    pub fn cancel(&self) {
        let mut st = locked(&self.inner.state);
        st.cancelled = true;
        self.inner.changed.notify_all();
    }

    /// True once [`CancellationToken::cancel`] has been called (or a
    /// scripted [`CancellationToken::cancel_at_check`] fired).
    pub fn is_cancelled(&self) -> bool {
        locked(&self.inner.state).cancelled
    }

    /// Script this token to flip to cancelled on its `n`-th checkpoint
    /// probe (1-based; `checkpoint` calls count).  `n = 0` cancels
    /// immediately.  Deterministic for a deterministic execution, which
    /// is what lets the chaos oracle sweep every checkpoint index.
    pub fn cancel_at_check(&self, n: u64) {
        let mut st = locked(&self.inner.state);
        if n == 0 {
            st.cancelled = true;
            self.inner.changed.notify_all();
        } else {
            st.cancel_at_check = Some(st.checks + n);
        }
    }

    /// One checkpoint probe: count it, fire any scripted cancellation
    /// that is due, and report whether the token is cancelled.
    pub fn checkpoint(&self) -> bool {
        let mut st = locked(&self.inner.state);
        st.checks += 1;
        if let Some(at) = st.cancel_at_check {
            if st.checks >= at {
                st.cancelled = true;
                st.cancel_at_check = None;
                self.inner.changed.notify_all();
            }
        }
        st.cancelled
    }

    /// Number of checkpoint probes observed so far — the chaos oracle
    /// runs a query once to learn its checkpoint count, then sweeps
    /// `cancel_at_check(1..=count)`.
    pub fn checks(&self) -> u64 {
        locked(&self.inner.state).checks
    }

    /// Block until the token is cancelled or `timeout` elapses; returns
    /// whether it is cancelled.
    pub fn wait_cancelled(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = locked(&self.inner.state);
        while !st.cancelled {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = wait_on_timeout(&self.inner.changed, st, deadline - now);
            st = g;
        }
        true
    }
}

/// A wall-clock deadline for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Everything a query carries about its own lifetime: an optional
/// cancellation token and an optional deadline.  `Default` is unbounded —
/// `check()` always passes — so library callers that don't care pay one
/// branch per checkpoint.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// Cooperative cancellation flag, shared with the session/server.
    pub token: Option<CancellationToken>,
    /// Wall-clock budget for the whole query.
    pub deadline: Option<Deadline>,
}

impl QueryContext {
    /// An unbounded context: never cancelled, no deadline.
    pub fn unbounded() -> QueryContext {
        QueryContext::default()
    }

    /// A context governed by `token` only.
    pub fn with_token(token: CancellationToken) -> QueryContext {
        QueryContext {
            token: Some(token),
            deadline: None,
        }
    }

    /// A context governed by a deadline only.
    pub fn with_deadline(deadline: Deadline) -> QueryContext {
        QueryContext {
            token: None,
            deadline: Some(deadline),
        }
    }

    /// Attach (or replace) the deadline.
    pub fn deadline(mut self, deadline: Deadline) -> QueryContext {
        self.deadline = Some(deadline);
        self
    }

    /// One cancellation checkpoint: returns [`TcuError::Cancelled`] when
    /// the token fired, [`TcuError::DeadlineExceeded`] when the deadline
    /// passed, `Ok(())` otherwise.  The deadline is only consulted when
    /// the token (if any) is clear, so a cancelled query reports
    /// cancellation even if it also ran long.
    pub fn check(&self) -> TcuResult<()> {
        if let Some(token) = &self.token {
            if token.checkpoint() {
                return Err(TcuError::Cancelled("query cancelled at checkpoint".into()));
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Err(TcuError::DeadlineExceeded(
                    "query deadline passed at checkpoint".into(),
                ));
            }
        }
        Ok(())
    }

    /// True when either governor has tripped, without counting a probe.
    pub fn is_done(&self) -> bool {
        self.token.as_ref().is_some_and(|t| t.is_cancelled())
            || self.deadline.as_ref().is_some_and(|d| d.expired())
    }

    /// The typed error for a tripped context without counting a probe —
    /// used after a parallel region to surface the error its worker
    /// shards observed (shards stop quietly; the coordinator reports).
    pub fn error_if_done(&self) -> TcuResult<()> {
        if self.token.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Err(TcuError::Cancelled("query cancelled at checkpoint".into()));
        }
        if self.deadline.as_ref().is_some_and(|d| d.expired()) {
            return Err(TcuError::DeadlineExceeded(
                "query deadline passed at checkpoint".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    fn poison_mutex(m: &Arc<Mutex<u32>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
    }

    #[test]
    fn locked_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        poison_mutex(&m);
        let g = locked(&m);
        assert_eq!(*g, 7);
        drop(g);
        assert!(!m.is_poisoned());
        // And a plain lock() works again afterwards.
        assert_eq!(*m.lock().unwrap(), 7);
    }

    #[test]
    fn rwlock_helpers_recover_from_poison() {
        let l = Arc::new(RwLock::new(3u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_locked(&l), 3);
        *write_locked(&l) = 4;
        assert_eq!(*l.read().unwrap(), 4);
    }

    #[test]
    fn wait_on_timeout_reports_timeouts_and_signals() {
        use std::sync::Condvar;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No signal: times out.
        {
            let (m, cv) = &*pair;
            let g = locked(m);
            let (_g, timed_out) = wait_on_timeout(cv, g, Duration::from_millis(5));
            assert!(timed_out);
        }
        // Signalled: returns before a generous timeout.
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut stop = locked(m);
            while !*stop {
                let (g, _) = wait_on_timeout(cv, stop, Duration::from_secs(10));
                stop = g;
            }
        });
        {
            let (m, cv) = &*pair;
            *locked(m) = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn cancellation_token_is_shared_across_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.checkpoint());
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_at_check_fires_on_the_exact_probe() {
        let token = CancellationToken::new();
        token.cancel_at_check(3);
        assert!(!token.checkpoint()); // probe 1
        assert!(!token.checkpoint()); // probe 2
        assert!(token.checkpoint()); // probe 3: fires
        assert!(token.is_cancelled());
        assert_eq!(token.checks(), 3);
    }

    #[test]
    fn cancel_at_check_zero_cancels_immediately() {
        let token = CancellationToken::new();
        token.cancel_at_check(0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_at_check_counts_from_current_probe() {
        let token = CancellationToken::new();
        token.checkpoint();
        token.checkpoint();
        token.cancel_at_check(2); // relative: fires on probe 4 overall
        assert!(!token.checkpoint());
        assert!(token.checkpoint());
    }

    #[test]
    fn wait_cancelled_wakes_on_cancel_and_times_out_otherwise() {
        use std::time::Duration;
        let token = CancellationToken::new();
        assert!(!token.wait_cancelled(Duration::from_millis(5)));
        let t2 = token.clone();
        let waiter = std::thread::spawn(move || t2.wait_cancelled(Duration::from_secs(10)));
        token.cancel();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn deadline_expires_and_reports_remaining() {
        use std::time::Duration;
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(30));
        let past = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn query_context_check_returns_typed_errors() {
        use crate::TcuError;
        use std::time::Duration;
        // Unbounded: always passes.
        assert!(QueryContext::unbounded().check().is_ok());

        let token = CancellationToken::new();
        let ctx = QueryContext::with_token(token.clone());
        assert!(ctx.check().is_ok());
        token.cancel();
        assert!(matches!(ctx.check(), Err(TcuError::Cancelled(_))));
        assert!(ctx.is_done());

        let ctx = QueryContext::with_deadline(Deadline::after(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(ctx.check(), Err(TcuError::DeadlineExceeded(_))));

        // Cancellation wins over an expired deadline.
        let token = CancellationToken::new();
        token.cancel();
        let ctx = QueryContext::with_token(token).deadline(Deadline::after(Duration::ZERO));
        assert!(matches!(ctx.check(), Err(TcuError::Cancelled(_))));
    }

    #[test]
    fn wait_on_passes_through_signalled_guard() {
        use std::sync::Condvar;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = locked(m);
            while !*done {
                done = wait_on(cv, done);
            }
        });
        {
            let (m, cv) = &*pair;
            *locked(m) = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
