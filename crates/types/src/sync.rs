//! Poison-recovering lock helpers.
//!
//! `std::sync` poisons a lock when a thread panics while holding its
//! guard.  For the TCUDB serving layer, poisoning must never be fatal:
//! the protected state is either a pure cache (plan cache, encoding
//! cache) or scheduler bookkeeping whose invariants are re-established
//! on every pass, so the correct response to a poisoned lock is to clear
//! the flag and continue — not to `unwrap()` and turn one panicking
//! worker into whole-server death.
//!
//! These helpers are also what the `tcudb-analyze` lock-order rule keys
//! on: `locked(&self.state)` is recognised as an acquisition of `state`
//! exactly like a bare `self.state.lock()` would be, so migrating a call
//! site to the helpers never hides it from the static analysis.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a [`Mutex`], clearing poisoning instead of panicking.
pub fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Read-lock an [`RwLock`], clearing poisoning instead of panicking.
pub fn read_locked<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Write-lock an [`RwLock`], clearing poisoning instead of panicking.
pub fn write_locked<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => {
            l.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Wait on a [`Condvar`], re-acquiring the guard and clearing poisoning
/// instead of panicking.
pub fn wait_on<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Wait on a [`Condvar`] with a timeout, re-acquiring the guard and
/// clearing poisoning instead of panicking.  Returns the guard and
/// whether the wait timed out — the shape background flusher loops
/// need: wake on signal *or* after the flush interval.
pub fn wait_on_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: std::time::Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    fn poison_mutex(m: &Arc<Mutex<u32>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
    }

    #[test]
    fn locked_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        poison_mutex(&m);
        let g = locked(&m);
        assert_eq!(*g, 7);
        drop(g);
        assert!(!m.is_poisoned());
        // And a plain lock() works again afterwards.
        assert_eq!(*m.lock().unwrap(), 7);
    }

    #[test]
    fn rwlock_helpers_recover_from_poison() {
        let l = Arc::new(RwLock::new(3u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(*read_locked(&l), 3);
        *write_locked(&l) = 4;
        assert_eq!(*l.read().unwrap(), 4);
    }

    #[test]
    fn wait_on_timeout_reports_timeouts_and_signals() {
        use std::sync::Condvar;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No signal: times out.
        {
            let (m, cv) = &*pair;
            let g = locked(m);
            let (_g, timed_out) = wait_on_timeout(cv, g, Duration::from_millis(5));
            assert!(timed_out);
        }
        // Signalled: returns before a generous timeout.
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut stop = locked(m);
            while !*stop {
                let (g, _) = wait_on_timeout(cv, stop, Duration::from_secs(10));
                stop = g;
            }
        });
        {
            let (m, cv) = &*pair;
            *locked(m) = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_on_passes_through_signalled_guard() {
        use std::sync::Condvar;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = locked(m);
            while !*done {
                done = wait_on(cv, done);
            }
        });
        {
            let (m, cv) = &*pair;
            *locked(m) = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
