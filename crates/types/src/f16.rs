//! Software emulation of IEEE-754 binary16 ("half precision").
//!
//! NVIDIA Tensor Core Units accept at most 16-bit floating-point inputs
//! (§2.1 of the paper).  TCUDB therefore has to reason about — and we have
//! to reproduce — the rounding error introduced when 32/64-bit column
//! values are cast down to half precision before a WMMA/cuBLAS call.
//!
//! This module implements the conversion in plain Rust (no `half` crate
//! dependency) using round-to-nearest-even, the same rounding mode used by
//! the hardware `cvt.rn.f16.f32` instruction.  The emulated GEMM kernels in
//! `tcudb-tensor` round both operands through [`F16`] and accumulate in
//! f32, which mirrors the numeric behaviour of `mma.sync` with f32
//! accumulators and lets us regenerate Table 1 (MAPE of matrix
//! multiplication queries) of the paper.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE-754 binary16 value stored as its raw bit pattern.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(pub u16);

/// Largest finite value representable in binary16 (65504).
pub const F16_MAX: f32 = 65504.0;
/// Smallest positive normal binary16 value (2^-14).
pub const F16_MIN_POSITIVE: f32 = 6.103_515_6e-5;
/// Machine epsilon of binary16 (2^-10).
pub const F16_EPSILON: f32 = 9.765_625e-4;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Convert an `f32` to binary16 with round-to-nearest-even, the rounding
    /// used by the hardware conversion instructions.
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Convert an `f64` to binary16 (via f32, which is exact for the
    /// binary16 range of interest and matches what a GPU driver would do).
    pub fn from_f64(value: f64) -> F16 {
        F16::from_f32(value as f32)
    }

    /// Widen back to `f32`.  This conversion is exact.
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widen back to `f64`.  This conversion is exact.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is finite (neither NaN nor infinite).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Round an `f32` through binary16 and back: the value a TCU would
    /// actually see for this operand.
    pub fn round_trip(value: f32) -> f32 {
        F16::from_f32(value).to_f32()
    }

    /// Round an `f64` through binary16 and back.
    pub fn round_trip_f64(value: f64) -> f64 {
        F16::from_f64(value).to_f64()
    }

    /// Can `value` be represented in binary16 without overflowing to
    /// infinity?  Used by the feasibility test (§4.2.1).
    pub fn representable(value: f64) -> bool {
        value.abs() <= F16_MAX as f64
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

/// Convert f32 bits to binary16 bits with round-to-nearest-even.
fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mantissa = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // NaN or infinity.
        return if mantissa != 0 {
            sign | 0x7C00 | 0x0200 // quiet NaN
        } else {
            sign | 0x7C00
        };
    }

    // Re-bias the exponent from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    let f16_exp = unbiased + 15;

    if f16_exp >= 0x1F {
        // Overflow → infinity.
        return sign | 0x7C00;
    }

    if f16_exp <= 0 {
        // Subnormal or underflow to zero.
        if f16_exp < -10 {
            return sign; // too small: rounds to signed zero
        }
        // Add the implicit leading one and shift into subnormal position.
        let mant = mantissa | 0x0080_0000;
        let shift = 14 - f16_exp; // between 14 and 24
        let half_way = 1u32 << (shift - 1);
        let rounded = mant >> shift;
        let remainder = mant & ((1u32 << shift) - 1);
        let mut out = rounded as u16;
        if remainder > half_way || (remainder == half_way && (out & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }

    // Normal case: keep the top 10 mantissa bits, round-to-nearest-even on
    // the remaining 13 bits.
    let mut out = ((f16_exp as u16) << 10) | ((mantissa >> 13) as u16);
    let round_bits = mantissa & 0x1FFF;
    if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) == 1) {
        // This addition may carry into the exponent, which correctly
        // handles values that round up to the next power of two (or to
        // infinity).
        out += 1;
    }
    sign | out
}

/// Convert binary16 bits to an f32 (exact).
fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mantissa = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if mantissa == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalise it into an f32 normal number.
            let mut exp32 = 127 - 15 + 1;
            let mut m = mantissa;
            while m & 0x0400 == 0 {
                m <<= 1;
                exp32 -= 1;
            }
            m &= 0x03FF;
            sign | ((exp32 as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        if mantissa == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 // NaN
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mantissa << 13)
    };
    f32::from_bits(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_integers_round_trip() {
        // All integers up to 2048 are exactly representable in binary16.
        for i in -2048..=2048i32 {
            let v = i as f32;
            assert_eq!(F16::round_trip(v), v, "integer {i} should be exact");
        }
    }

    #[test]
    fn zero_and_one_constants() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::from_f32(0.0), F16::ZERO);
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(F16::from_f32(70000.0).is_infinite());
        assert!(F16::from_f32(-70000.0).is_infinite());
        assert_eq!(F16::from_f32(70000.0), F16::INFINITY);
        assert_eq!(F16::from_f32(-70000.0), F16::NEG_INFINITY);
    }

    #[test]
    fn max_value_is_finite() {
        let max = F16::from_f32(F16_MAX);
        assert!(max.is_finite());
        assert_eq!(max.to_f32(), F16_MAX);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // 2^-24 is the smallest positive subnormal binary16 value.
        let tiny = 5.960_464_5e-8_f32;
        let rt = F16::round_trip(tiny);
        assert!(rt > 0.0);
        assert!((rt - tiny).abs() < tiny);
        // Values below half of the smallest subnormal flush to zero.
        assert_eq!(F16::round_trip(1e-9), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 2049 is exactly halfway between representable 2048 and 2050 and
        // must round to the even neighbour (2048).
        assert_eq!(F16::round_trip(2049.0), 2048.0);
        // 2051 is halfway between 2050 and 2052 → rounds to 2052 (even).
        assert_eq!(F16::round_trip(2051.0), 2052.0);
    }

    #[test]
    fn representable_bound() {
        assert!(F16::representable(65504.0));
        assert!(!F16::representable(65505.0));
        assert!(F16::representable(-65504.0));
        assert!(!F16::representable(1e10));
    }

    #[test]
    fn relative_error_bounded_by_epsilon() {
        // For normal values, round-trip relative error must be below the
        // binary16 machine epsilon.
        let values = [0.1f32, std::f32::consts::PI, 123.456, 9999.5, 0.001, 42.42];
        for &v in &values {
            let rt = F16::round_trip(v);
            let rel = ((rt - v) / v).abs();
            assert!(rel <= F16_EPSILON, "value {v}: rel error {rel}");
        }
    }

    #[test]
    fn ordering_matches_f32() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::from_f32(-3.0) < F16::from_f32(0.5));
    }

    proptest! {
        /// Round-tripping any finite value within the binary16 range keeps
        /// the relative error below 2^-11 (half an ulp of the 10-bit
        /// mantissa), or the absolute error below the smallest subnormal.
        #[test]
        fn prop_round_trip_error_bound(v in -60000.0f32..60000.0f32) {
            let rt = F16::round_trip(v);
            prop_assert!(rt.is_finite());
            let abs_err = (rt - v).abs();
            let rel_ok = v != 0.0 && abs_err / v.abs() <= 4.9e-4; // 2^-11
            let abs_ok = abs_err <= 6.1e-5; // subnormal granularity
            prop_assert!(rel_ok || abs_ok, "v={v}, rt={rt}, err={abs_err}");
        }

        /// Converting to f16 and back is idempotent: a second round trip
        /// never changes the value again.
        #[test]
        fn prop_round_trip_idempotent(v in -1.0e8f32..1.0e8f32) {
            let once = F16::round_trip(v);
            let twice = F16::round_trip(once);
            prop_assert!(once == twice || (once.is_nan() && twice.is_nan()));
        }

        /// Sign is always preserved.
        #[test]
        fn prop_sign_preserved(v in -60000.0f32..60000.0f32) {
            let rt = F16::round_trip(v);
            if v > 0.0 { prop_assert!(rt >= 0.0); }
            if v < 0.0 { prop_assert!(rt <= 0.0); }
        }

        /// Monotonicity: rounding preserves (non-strict) ordering.
        #[test]
        fn prop_monotonic(a in -60000.0f32..60000.0f32, b in -60000.0f32..60000.0f32) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(F16::round_trip(lo) <= F16::round_trip(hi));
        }
    }
}
