//! Dynamic value model shared by the storage layer, the SQL front-end and
//! the execution engines.

use crate::error::{TcuError, TcuResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical column data types supported by TCUDB-RS.
///
/// The paper's storage layer is a columnar store over integer, floating
/// point, and (dictionary-encoded) string columns; that is exactly what we
/// support here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Variable-length UTF-8 string.
    Text,
}

impl DataType {
    /// Width in bytes of one element as stored in host memory
    /// (Text columns report the pointer-sized dictionary code width).
    pub fn host_width_bytes(self) -> usize {
        match self {
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Text => 4, // dictionary code
        }
    }

    /// Is this a numeric type that can participate in aggregates and in
    /// matrix value payloads?
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int64 => write!(f, "INT"),
            DataType::Float64 => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A single dynamically-typed value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer value.
    Int(i64),
    /// 64-bit float value.
    Float(f64),
    /// String value.
    Text(String),
}

impl Value {
    /// The data type of this value (`None` for NULL).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `f64` (integers widen, NULL and text fail).
    pub fn as_f64(&self) -> TcuResult<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            other => Err(TcuError::InvalidArgument(format!(
                "cannot interpret {other:?} as f64"
            ))),
        }
    }

    /// Interpret the value as an `i64` (floats must be integral).
    pub fn as_i64(&self) -> TcuResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(TcuError::InvalidArgument(format!(
                "cannot interpret {other:?} as i64"
            ))),
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> TcuResult<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(TcuError::InvalidArgument(format!(
                "cannot interpret {other:?} as text"
            ))),
        }
    }

    /// A stable key usable for hashing / grouping / join matching.
    ///
    /// Floats are keyed by their bit pattern; `Int(x)` and `Float(x.0)` are
    /// normalised to the same key so that joins across INT and FLOAT key
    /// columns behave like SQL equality.
    pub fn group_key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Int(v) => ValueKey::Int(*v),
            Value::Float(v) => ValueKey::from_f64(*v),
            Value::Text(s) => ValueKey::Text(s.clone()),
        }
    }

    /// SQL equality (NULL is not equal to anything, including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.group_key() == other.group_key()
    }

    /// Three-way comparison used by ORDER BY and non-equi joins.
    /// NULLs sort first; mixed numeric types compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => {
                let fa = a.as_f64().unwrap_or(f64::NEG_INFINITY);
                let fb = b.as_f64().unwrap_or(f64::NEG_INFINITY);
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_key() == other.group_key()
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// Normalised, hashable key form of a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// NULL key (only produced by grouping, never matches in joins).
    Null,
    /// Integer (also used for integral floats).
    Int(i64),
    /// Non-integral float keyed by bit pattern.
    FloatBits(u64),
    /// String key.
    Text(String),
}

impl ValueKey {
    /// The normalised key of a float: integral floats within the `i64`
    /// range unify with [`ValueKey::Int`] (so INT⋈FLOAT equality works),
    /// everything else keys by bit pattern.  The single source of truth
    /// for this normalisation — [`Value::group_key`] and the vectorized
    /// filter kernels both call it, so they can never disagree.
    pub fn from_f64(x: f64) -> ValueKey {
        if x.fract() == 0.0 && x.abs() < 9.2e18 {
            ValueKey::Int(x as i64)
        } else {
            ValueKey::FloatBits(x.to_bits())
        }
    }
}

impl fmt::Display for ValueKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKey::Null => write!(f, "NULL"),
            ValueKey::Int(v) => write!(f, "{v}"),
            ValueKey::FloatBits(b) => write!(f, "{}", f64::from_bits(*b)),
            ValueKey::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert_eq!(DataType::Int64.host_width_bytes(), 8);
        assert_eq!(DataType::Text.to_string(), "TEXT");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::Float(7.0).as_i64().unwrap(), 7);
        assert!(Value::Float(7.5).as_i64().is_err());
        assert_eq!(Value::from("abc").as_str().unwrap(), "abc");
        assert!(Value::Null.as_f64().is_err());
    }

    #[test]
    fn int_float_join_keys_unify() {
        assert_eq!(Value::Int(5).group_key(), Value::Float(5.0).group_key());
        assert_ne!(Value::Int(5).group_key(), Value::Float(5.5).group_key());
    }

    #[test]
    fn sql_equality_and_null_semantics() {
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_eq(&Value::Int(2)));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::from("x").sql_eq(&Value::from("x")));
    }

    #[test]
    fn ordering_behaviour() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(1.5)), Ordering::Greater);
        assert_eq!(Value::from("a").sql_cmp(&Value::from("b")), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::Float(3.5));
        assert_eq!(Value::from("s".to_string()), Value::Text("s".into()));
    }
}
