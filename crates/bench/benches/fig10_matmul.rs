//! Criterion bench regenerating Figure 10 (matrix-multiplication query).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::{fig10_matmul, fig10_projection};
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig10_matmul");
    group.sample_size(10);
    group.bench_function("matmul_query_dim64_128", |b| {
        b.iter(|| fig10_matmul(std::hint::black_box(&[64, 128]), &device).unwrap())
    });
    group.bench_function("matmul_projection_paper_scale", |b| {
        b.iter(|| fig10_projection(std::hint::black_box(&[4096, 16384, 32768, 65536]), &device))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
