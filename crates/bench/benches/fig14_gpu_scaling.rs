//! Criterion bench regenerating Figure 14 (RTX 3090 vs RTX 2080 scaling).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig14_gpu_scaling;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_gpu_scaling");
    group.sample_size(10);
    group.bench_function("micro_4096x32_two_devices", |b| {
        b.iter(|| fig14_gpu_scaling(std::hint::black_box(&[4096]), 32).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
