//! Criterion bench regenerating Figure 11 (entity-matching blocking).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig11_entity_matching;
use tcudb_datagen::em;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig11_entity_matching");
    group.sample_size(10);
    group.bench_function("beer_advo_ratebeer_blocking", |b| {
        b.iter(|| {
            fig11_entity_matching(std::hint::black_box(&em::beer_advo_ratebeer()), &device).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
