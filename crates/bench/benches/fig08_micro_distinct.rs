//! Criterion bench regenerating Figure 8 (Q1/Q3/Q4 vs distinct values).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig8_micro_distinct;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig08_micro_distinct");
    group.sample_size(10);
    group.bench_function("q1_q3_q4_4096_distinct_sweep", |b| {
        b.iter(|| fig8_micro_distinct(4096, std::hint::black_box(&[32, 512]), &device).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
