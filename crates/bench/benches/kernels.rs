//! Criterion wrapper over the kernel-engine perf baseline: tiled engine
//! vs. naive reference oracle on a small GEMM shape (the full sweep with
//! JSON output lives in the `perfbaseline` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_tensor::gemm::{gemm_with_threads, GemmPrecision};
use tcudb_tensor::{reference, DenseMatrix};

fn matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut state = seed.wrapping_add(77);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 15) as f32 - 7.0
    };
    DenseMatrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
}

fn bench_kernels(c: &mut Criterion) {
    let a = matrix(256, 256, 1);
    let b = matrix(256, 256, 2);
    c.bench_function("kernels/reference_gemm_fp32_256", |bch| {
        bch.iter(|| reference::gemm(&a, &b, GemmPrecision::Fp32).unwrap().0)
    });
    c.bench_function("kernels/tiled_gemm_fp32_256_1t", |bch| {
        bch.iter(|| gemm_with_threads(&a, &b, GemmPrecision::Fp32, 1).unwrap().0)
    });
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    c.bench_function("kernels/tiled_gemm_fp32_256_mt", |bch| {
        bch.iter(|| {
            gemm_with_threads(&a, &b, GemmPrecision::Fp32, threads)
                .unwrap()
                .0
        })
    });
    c.bench_function("kernels/tiled_gemm_half_256_1t", |bch| {
        bch.iter(|| gemm_with_threads(&a, &b, GemmPrecision::Half, 1).unwrap().0)
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
