//! Criterion bench regenerating Figure 3 (GEMM: CUDA cores vs TCUs).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig3_gemm;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    c.bench_function("fig03_gemm_sweep", |b| {
        b.iter(|| {
            fig3_gemm(
                std::hint::black_box(&[1024, 2048, 4096, 8192, 16384]),
                &device,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
