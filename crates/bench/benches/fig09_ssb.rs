//! Criterion bench regenerating Figure 9 (Star Schema Benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig9_ssb;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig09_ssb");
    group.sample_size(10);
    group.bench_function("ssb_sf1_flight_representatives", |b| {
        b.iter(|| fig9_ssb(std::hint::black_box(&[1]), false, &device).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
