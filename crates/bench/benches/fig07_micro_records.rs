//! Criterion bench regenerating Figure 7 (Q1/Q3/Q4 vs record count).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig7_micro_records;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig07_micro_records");
    group.sample_size(10);
    group.bench_function("q1_q3_q4_4096x32", |b| {
        b.iter(|| fig7_micro_records(std::hint::black_box(&[4096]), 32, &device).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
