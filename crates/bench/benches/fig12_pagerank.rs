//! Criterion bench regenerating Figure 12 (PageRank queries).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig12_pagerank;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig12_pagerank");
    group.sample_size(10);
    group.bench_function("pagerank_queries_1k_2k", |b| {
        b.iter(|| fig12_pagerank(std::hint::black_box(&[0, 1]), &device).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
