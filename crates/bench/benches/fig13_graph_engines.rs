//! Criterion bench regenerating Figure 13 (graph-engine comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_bench::fig13_graph_engines;
use tcudb_device::DeviceProfile;

fn bench(c: &mut Criterion) {
    let device = DeviceProfile::rtx_3090();
    let mut group = c.benchmark_group("fig13_graph_engines");
    group.sample_size(10);
    group.bench_function("pr_q3_core_1k_4k", |b| {
        b.iter(|| fig13_graph_engines(std::hint::black_box(&[0, 3]), &device).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
