//! Criterion wrapper over the end-to-end query perf baseline: the encoded
//! columnar data path vs. the `Value` interpreter on one SSB flight-1
//! query and one microbenchmark aggregate (the full sweep with JSON output
//! lives in the `perfqueries` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use tcudb_core::{EngineConfig, TcuDb};
use tcudb_datagen::{micro, ssb};

fn bench_queries(c: &mut Criterion) {
    let ssb_catalog = ssb::gen_catalog(1, 0x55B);
    let q11 = &ssb::queries()[0].1;
    let encoded = TcuDb::new(EngineConfig::default().with_encoded_path(true));
    let interp = TcuDb::new(EngineConfig::default().with_encoded_path(false));
    encoded.set_catalog(ssb_catalog.clone());
    interp.set_catalog(ssb_catalog);
    // Warm the dictionary cache so the timed runs measure the
    // repeated-query regime.
    encoded.execute(q11).unwrap();
    c.bench_function("queries/ssb_q1_1_interpreter", |b| {
        b.iter(|| interp.execute(q11).unwrap().table)
    });
    c.bench_function("queries/ssb_q1_1_encoded", |b| {
        b.iter(|| encoded.execute(q11).unwrap().table)
    });

    let micro_catalog = micro::gen_catalog(&micro::MicroConfig::new(20_000, 4_096));
    let encoded_micro = TcuDb::new(EngineConfig::default().with_encoded_path(true));
    encoded_micro.set_catalog(micro_catalog);
    encoded_micro.execute(micro::Q3).unwrap();
    c.bench_function("queries/micro_q3_encoded", |b| {
        b.iter(|| encoded_micro.execute(micro::Q3).unwrap().table)
    });
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
