//! `perfqueries` — end-to-end query performance harness.
//!
//! Times full `TcuDb::execute` (parse → analyze → filter → join → finalize)
//! with the encoded columnar data path against the row-at-a-time `Value`
//! interpreter baseline on repeated SSB-style, microbenchmark and matmul
//! workloads, verifies the two paths return byte-identical result tables
//! while doing so, and emits `BENCH_queries.json` so every future PR has a
//! trajectory to beat.
//!
//! Each entry also reports the **host-measured phase attribution** of the
//! encoded path (join vs finalize share of the wall clock) so the JSON
//! shows *why* a query is fast or slow — a query at 1.1× with a 0.9
//! finalize share is bottlenecked on the output pipeline, not the joins.
//!
//! Both engines share one catalog (`Arc`-shared tables), so the encoded
//! engine's dictionary cache is warmed by the verification pass — the timed
//! repetitions measure exactly the repeated-query regime the cache exists
//! for.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin perfqueries            # full sweep
//! cargo run --release -p tcudb-bench --bin perfqueries -- --quick # CI smoke set
//! cargo run --release -p tcudb-bench --bin perfqueries -- --out q.json
//! cargo run --release -p tcudb-bench --bin perfqueries -- --ssb-sf 1  # full-scale SSB
//! ```
//!
//! `--ssb-sf N` switches to the paper's full-scale SSB (six million
//! `lineorder` rows per SF) and races the zone-map-pruned morsel engine
//! against the same engine with pruning off on a single thread, gating on
//! interactive flight-1 latency (< 250 ms), ≥ 2× speedup on at least four
//! queries, and ≥ 50 % of Q1.1's chunks pruned.
//!
//! Exit codes: `0` success, `2` a gated query missed its minimum
//! encoded-vs-interpreter speedup (1× on the original smoke set, 2× on
//! the finalize-dominated set), or a pruning/latency gate failed, `3`
//! the two paths disagreed on a result table.

use std::hint::black_box;
use std::time::Instant;

use tcudb_core::{EngineConfig, HostBreakdown, TcuDb};
use tcudb_datagen::{matmul, micro, ssb};
use tcudb_storage::{Catalog, Table};

struct Entry {
    workload: &'static str,
    name: String,
    rows_out: usize,
    interp_secs: f64,
    encoded_secs: f64,
    /// Host-measured phase attribution of the encoded path's best rep.
    host: HostBreakdown,
    /// CI smoke gate: minimum encoded-vs-interpreter speedup (0 = ungated).
    gate_min: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.interp_secs / self.encoded_secs
    }

    fn join_share(&self) -> f64 {
        let total = self.host.total_secs();
        if total > 0.0 {
            self.host.join_secs / total
        } else {
            0.0
        }
    }

    fn finalize_share(&self) -> f64 {
        let total = self.host.total_secs();
        if total > 0.0 {
            self.host.finalize_secs / total
        } else {
            0.0
        }
    }

    /// Fraction of base-table chunks the zone maps let the scan skip.
    fn pruned_frac(&self) -> f64 {
        let total = self.host.chunks_scanned + self.host.chunks_pruned;
        if total > 0 {
            self.host.chunks_pruned as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Best-of-`reps` wall-clock seconds of one full `execute` call, plus the
/// host phase breakdown of the best rep.
fn time_query(db: &TcuDb, sql: &str, reps: usize) -> (f64, HostBreakdown) {
    let mut best = f64::INFINITY;
    let mut host = HostBreakdown::default();
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = black_box(db.execute(sql).expect("query executes"));
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            host = out.host;
        }
    }
    (best, host)
}

/// Build the two engines over one shared catalog.
fn engines(catalog: &Catalog) -> (TcuDb, TcuDb) {
    let encoded = TcuDb::new(EngineConfig::default().with_encoded_path(true));
    let interp = TcuDb::new(EngineConfig::default().with_encoded_path(false));
    encoded.set_catalog(catalog.clone());
    interp.set_catalog(catalog.clone());
    (encoded, interp)
}

/// Verify both paths agree (byte-identical tables and identical plans),
/// returning the result table.  This pass also warms the encoded engine's
/// dictionary caches.
fn verify(encoded: &TcuDb, interp: &TcuDb, workload: &str, name: &str, sql: &str) -> Table {
    let e = encoded.execute(sql).expect("encoded path executes");
    let i = interp.execute(sql).expect("interpreter path executes");
    if e.table != i.table || e.plan.steps != i.plan.steps {
        eprintln!("FATAL: {workload}/{name}: encoded result diverged from interpreter");
        eprintln!("-- encoded --\n{}", e.table.format_preview(10));
        eprintln!("-- interpreter --\n{}", i.table.format_preview(10));
        std::process::exit(3);
    }
    e.table
}

fn run_workload(
    entries: &mut Vec<Entry>,
    workload: &'static str,
    catalog: &Catalog,
    queries: &[(String, String, f64)],
    reps: usize,
) {
    let (encoded, interp) = engines(catalog);
    for (name, sql, gate_min) in queries {
        let table = verify(&encoded, &interp, workload, name, sql);
        let (encoded_secs, host) = time_query(&encoded, sql, reps);
        let (interp_secs, _) = time_query(&interp, sql, reps);
        let e = Entry {
            workload,
            name: name.clone(),
            rows_out: table.num_rows(),
            interp_secs,
            encoded_secs,
            host,
            gate_min: *gate_min,
        };
        print_entry(&e);
        entries.push(e);
    }
}

fn print_entry(e: &Entry) {
    println!(
        "{:<11} {:<10} {:>10.4}s {:>10.4}s {:>8.2}x  j={:>4.0}% f={:>4.0}% z={}/{} m={} {:>8} rows",
        e.workload,
        e.name,
        e.interp_secs,
        e.encoded_secs,
        e.speedup(),
        e.join_share() * 100.0,
        e.finalize_share() * 100.0,
        e.host.chunks_pruned,
        e.host.chunks_scanned + e.host.chunks_pruned,
        e.host.morsels,
        e.rows_out,
    );
}

fn json(entries: &[Entry], mode: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"perfqueries\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    let best = entries
        .iter()
        .filter(|e| e.workload == "ssb")
        .map(|e| e.speedup())
        .fold(0.0f64, f64::max);
    out.push_str(&format!("  \"best_ssb_speedup\": {best:.2},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"name\": \"{}\", \"rows_out\": {}, \
             \"interpreter_secs\": {:.6}, \"encoded_secs\": {:.6}, \
             \"speedup\": {:.2}, \"join_share\": {:.2}, \"finalize_share\": {:.2}, \
             \"chunks_scanned\": {}, \"chunks_pruned\": {}, \"pruned_frac\": {:.2}, \
             \"morsels\": {}, \"workers\": {}, \
             \"gate_min\": {}}}{}\n",
            e.workload,
            e.name,
            e.rows_out,
            e.interp_secs,
            e.encoded_secs,
            e.speedup(),
            e.join_share(),
            e.finalize_share(),
            e.host.chunks_scanned,
            e.host.chunks_pruned,
            e.pruned_frac(),
            e.host.morsels,
            e.host.workers,
            e.gate_min,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the full-scale SSB sweep at a real scale factor and enforce the
/// interactive-latency, pruning-effectiveness, and speedup gates.
///
/// The baseline engine is the same encoded morsel engine with zone-map
/// pruning disabled and a single morsel thread — i.e. the single-thread
/// unchunked-equivalent oracle — so the reported speedup isolates exactly
/// what partitioned storage buys.  The row-at-a-time interpreter is not
/// raced here: at six million fact rows it is minutes per query.
fn ssb_sf_mode(sf: usize, out_path: &str) {
    let reps = 2;
    println!("perfqueries: mode=ssb-sf{sf} reps={reps}");
    let scale = ssb::SsbScale::full(sf);
    println!(
        "generating SSB SF={sf}: lineorder={} customer={} supplier={} part={}",
        scale.lineorder, scale.customer, scale.supplier, scale.part
    );
    let catalog = ssb::gen_catalog_scaled(&scale, 0x55B);
    let pruned_db = TcuDb::new(EngineConfig::default().with_encoded_path(true));
    let baseline = TcuDb::new(
        EngineConfig::default()
            .with_encoded_path(true)
            .with_zone_prune(false)
            .with_morsel_threads(Some(1)),
    );
    pruned_db.set_catalog(catalog.clone());
    baseline.set_catalog(catalog);
    println!(
        "{:<11} {:<10} {:>11} {:>11} {:>9} {:>15} {:>13}",
        "workload", "query", "baseline", "pruned", "speedup", "join/finalize", "result"
    );
    let mut entries = Vec::new();
    for (name, sql) in ssb::queries() {
        let p = pruned_db.execute(&sql).expect("pruned engine executes");
        let b = baseline.execute(&sql).expect("baseline engine executes");
        if p.table != b.table {
            eprintln!("FATAL: ssb-sf/{name}: pruned result diverged from unchunked baseline");
            eprintln!("-- pruned --\n{}", p.table.format_preview(10));
            eprintln!("-- baseline --\n{}", b.table.format_preview(10));
            std::process::exit(3);
        }
        let (encoded_secs, host) = time_query(&pruned_db, &sql, reps);
        let (baseline_secs, _) = time_query(&baseline, &sql, reps);
        let e = Entry {
            workload: "ssb-sf",
            name: name.to_string(),
            rows_out: p.table.num_rows(),
            interp_secs: baseline_secs,
            encoded_secs,
            host,
            gate_min: 0.0,
        };
        print_entry(&e);
        entries.push(e);
    }

    let payload = json(&entries, &format!("ssb-sf{sf}"));
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let mut failed = false;
    // Gate 1: flight-1 queries stay interactive.
    for e in entries.iter().filter(|e| e.name.starts_with("Q1.")) {
        if e.encoded_secs > 0.250 {
            eprintln!(
                "GATE: ssb-sf/{} took {:.4}s, above the 250ms interactive floor",
                e.name, e.encoded_secs
            );
            failed = true;
        }
    }
    // Gate 2: pruning must pay for itself on at least four queries.
    let fast = entries.iter().filter(|e| e.speedup() >= 2.0).count();
    if fast < 4 {
        eprintln!(
            "GATE: only {fast} queries reached 2x over the unchunked \
             single-thread baseline (need >= 4)"
        );
        failed = true;
    }
    // Gate 3: Q1.1 must skip at least half its chunks.
    if let Some(q11) = entries.iter().find(|e| e.name == "Q1.1") {
        if q11.pruned_frac() < 0.5 {
            eprintln!(
                "GATE: Q1.1 pruned only {:.0}% of chunks (need >= 50%)",
                q11.pruned_frac() * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_queries.json");
    if let Some(sf) = args
        .iter()
        .position(|a| a == "--ssb-sf")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        ssb_sf_mode(sf, out_path);
        return;
    }
    // Best-of-3 even in quick mode: the CI gate compares single timings,
    // and one noisy rep on a shared runner must not fail the job.
    let reps = 3;
    let mode = if quick { "quick" } else { "full" };
    println!("perfqueries: mode={mode} reps={reps}");
    println!(
        "{:<11} {:<10} {:>11} {:>11} {:>9} {:>15} {:>13}",
        "workload", "query", "interpreter", "encoded", "speedup", "join/finalize", "result"
    );

    let mut entries = Vec::new();

    // ---- SSB: the repeated-query star-schema workload the dictionary
    // cache is built for (text filters, multiway joins, fused aggregates).
    // Two gate tiers: the original smoke set must never lose to the
    // interpreter; the finalize-dominated flight-4 queries must hold the
    // ≥2× speedup the vectorized output pipeline delivers.
    let ssb_catalog = ssb::gen_catalog(1, 0x55B);
    let smoke = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"];
    let finalize_gated = ["Q4.2", "Q4.3"];
    let ssb_queries: Vec<(String, String, f64)> = ssb::queries()
        .into_iter()
        .filter(|(name, _)| !quick || smoke.contains(name) || finalize_gated.contains(name))
        .map(|(name, sql)| {
            let gate = if finalize_gated.contains(&name) {
                2.0
            } else if smoke.contains(&name) {
                1.0
            } else {
                0.0
            };
            (name.to_string(), sql, gate)
        })
        .collect();
    run_workload(&mut entries, "ssb", &ssb_catalog, &ssb_queries, reps);

    // ---- Zone-map pruning: flight 1 again over a catalog whose fact
    // table is partitioned into 4 Ki-row chunks, so even the mini-scale
    // instance gives the pruner ~15 chunks to skip.  Run through the same
    // encoded-vs-interpreter verifier (both prune identically, so plans
    // must still match) and gated below on pruning effectiveness.
    let mut chunked_catalog = ssb_catalog.clone();
    let mut chunked_lo = (*chunked_catalog
        .table("lineorder")
        .expect("ssb catalog has lineorder"))
    .clone();
    chunked_lo.set_chunk_rows(4_096);
    chunked_catalog.register(chunked_lo);
    let prune_queries: Vec<(String, String, f64)> = ssb::queries()
        .into_iter()
        .filter(|(name, _)| name.starts_with("Q1."))
        .map(|(name, sql)| (name.to_string(), sql, 0.0))
        .collect();
    run_workload(
        &mut entries,
        "ssb-chunked",
        &chunked_catalog,
        &prune_queries,
        reps,
    );

    // ---- Microbenchmark joins (§5.1 shapes): integer keys, grouped
    // aggregates, plus the projection-heavy plain join (Q1), which is
    // finalize-dominated and gated at 2×.
    let micro_catalog = micro::gen_catalog(&micro::MicroConfig::new(20_000, 4_096));
    let micro_queries: Vec<(String, String, f64)> = micro::queries()
        .into_iter()
        .filter(|(name, _)| !quick || *name == "Q1" || *name == "Q3")
        .map(|(name, sql)| {
            let gate = if name == "Q1" { 2.0 } else { 0.0 };
            (name.to_string(), sql.to_string(), gate)
        })
        .collect();
    run_workload(&mut entries, "micro", &micro_catalog, &micro_queries, reps);

    // ---- The Figure 5 matrix-multiplication query.
    let mm_catalog = matmul::gen_catalog(96, 1.0, matmul::ValueRange::Int7, 7);
    let mm_queries = vec![(
        "matmul96".to_string(),
        matmul::MATMUL_QUERY.to_string(),
        0.0,
    )];
    run_workload(&mut entries, "matmul", &mm_catalog, &mm_queries, reps);

    let payload = json(&entries, mode);
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // CI gate: every gated query must hold its minimum speedup (other
    // entries are informational).
    let mut failed = false;
    // Pruning-effectiveness gate: the chunked flight-1 queries must
    // actually skip chunks, or zone maps have silently stopped working.
    for e in entries.iter().filter(|e| e.workload == "ssb-chunked") {
        if e.host.chunks_pruned == 0 {
            eprintln!(
                "GATE: ssb-chunked/{} pruned no chunks ({} scanned)",
                e.name, e.host.chunks_scanned
            );
            failed = true;
        }
    }
    for e in entries.iter().filter(|e| e.gate_min > 0.0) {
        if e.speedup() < e.gate_min {
            eprintln!(
                "GATE: {}/{} encoded path {:.2}x below the {:.1}x floor \
                 (encoded {:.4}s vs interpreter {:.4}s)",
                e.workload,
                e.name,
                e.speedup(),
                e.gate_min,
                e.encoded_secs,
                e.interp_secs
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
