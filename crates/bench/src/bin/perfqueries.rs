//! `perfqueries` — end-to-end query performance harness.
//!
//! Times full `TcuDb::execute` (parse → analyze → filter → join → finalize)
//! with the encoded columnar data path against the row-at-a-time `Value`
//! interpreter baseline on repeated SSB-style, microbenchmark and matmul
//! workloads, verifies the two paths return byte-identical result tables
//! while doing so, and emits `BENCH_queries.json` so every future PR has a
//! trajectory to beat.
//!
//! Each entry also reports the **host-measured phase attribution** of the
//! encoded path (join vs finalize share of the wall clock) so the JSON
//! shows *why* a query is fast or slow — a query at 1.1× with a 0.9
//! finalize share is bottlenecked on the output pipeline, not the joins.
//!
//! Both engines share one catalog (`Arc`-shared tables), so the encoded
//! engine's dictionary cache is warmed by the verification pass — the timed
//! repetitions measure exactly the repeated-query regime the cache exists
//! for.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin perfqueries            # full sweep
//! cargo run --release -p tcudb-bench --bin perfqueries -- --quick # CI smoke set
//! cargo run --release -p tcudb-bench --bin perfqueries -- --out q.json
//! ```
//!
//! Exit codes: `0` success, `2` a gated query missed its minimum
//! encoded-vs-interpreter speedup (1× on the original smoke set, 2× on
//! the finalize-dominated set), `3` the two paths disagreed on a result
//! table.

use std::hint::black_box;
use std::time::Instant;

use tcudb_core::{EngineConfig, HostBreakdown, TcuDb};
use tcudb_datagen::{matmul, micro, ssb};
use tcudb_storage::{Catalog, Table};

struct Entry {
    workload: &'static str,
    name: String,
    rows_out: usize,
    interp_secs: f64,
    encoded_secs: f64,
    /// Host-measured phase attribution of the encoded path's best rep.
    host: HostBreakdown,
    /// CI smoke gate: minimum encoded-vs-interpreter speedup (0 = ungated).
    gate_min: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.interp_secs / self.encoded_secs
    }

    fn join_share(&self) -> f64 {
        let total = self.host.total_secs();
        if total > 0.0 {
            self.host.join_secs / total
        } else {
            0.0
        }
    }

    fn finalize_share(&self) -> f64 {
        let total = self.host.total_secs();
        if total > 0.0 {
            self.host.finalize_secs / total
        } else {
            0.0
        }
    }
}

/// Best-of-`reps` wall-clock seconds of one full `execute` call, plus the
/// host phase breakdown of the best rep.
fn time_query(db: &TcuDb, sql: &str, reps: usize) -> (f64, HostBreakdown) {
    let mut best = f64::INFINITY;
    let mut host = HostBreakdown::default();
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = black_box(db.execute(sql).expect("query executes"));
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            host = out.host;
        }
    }
    (best, host)
}

/// Build the two engines over one shared catalog.
fn engines(catalog: &Catalog) -> (TcuDb, TcuDb) {
    let encoded = TcuDb::new(EngineConfig::default().with_encoded_path(true));
    let interp = TcuDb::new(EngineConfig::default().with_encoded_path(false));
    encoded.set_catalog(catalog.clone());
    interp.set_catalog(catalog.clone());
    (encoded, interp)
}

/// Verify both paths agree (byte-identical tables and identical plans),
/// returning the result table.  This pass also warms the encoded engine's
/// dictionary caches.
fn verify(encoded: &TcuDb, interp: &TcuDb, workload: &str, name: &str, sql: &str) -> Table {
    let e = encoded.execute(sql).expect("encoded path executes");
    let i = interp.execute(sql).expect("interpreter path executes");
    if e.table != i.table || e.plan.steps != i.plan.steps {
        eprintln!("FATAL: {workload}/{name}: encoded result diverged from interpreter");
        eprintln!("-- encoded --\n{}", e.table.format_preview(10));
        eprintln!("-- interpreter --\n{}", i.table.format_preview(10));
        std::process::exit(3);
    }
    e.table
}

fn run_workload(
    entries: &mut Vec<Entry>,
    workload: &'static str,
    catalog: &Catalog,
    queries: &[(String, String, f64)],
    reps: usize,
) {
    let (encoded, interp) = engines(catalog);
    for (name, sql, gate_min) in queries {
        let table = verify(&encoded, &interp, workload, name, sql);
        let (encoded_secs, host) = time_query(&encoded, sql, reps);
        let (interp_secs, _) = time_query(&interp, sql, reps);
        let e = Entry {
            workload,
            name: name.clone(),
            rows_out: table.num_rows(),
            interp_secs,
            encoded_secs,
            host,
            gate_min: *gate_min,
        };
        println!(
            "{:<10} {:<10} {:>10.4}s {:>10.4}s {:>8.2}x  j={:>4.0}% f={:>4.0}% {:>8} rows",
            e.workload,
            e.name,
            e.interp_secs,
            e.encoded_secs,
            e.speedup(),
            e.join_share() * 100.0,
            e.finalize_share() * 100.0,
            e.rows_out,
        );
        entries.push(e);
    }
}

fn json(entries: &[Entry], mode: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"perfqueries\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    let best = entries
        .iter()
        .filter(|e| e.workload == "ssb")
        .map(|e| e.speedup())
        .fold(0.0f64, f64::max);
    out.push_str(&format!("  \"best_ssb_speedup\": {best:.2},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"name\": \"{}\", \"rows_out\": {}, \
             \"interpreter_secs\": {:.6}, \"encoded_secs\": {:.6}, \
             \"speedup\": {:.2}, \"join_share\": {:.2}, \"finalize_share\": {:.2}, \
             \"gate_min\": {}}}{}\n",
            e.workload,
            e.name,
            e.rows_out,
            e.interp_secs,
            e.encoded_secs,
            e.speedup(),
            e.join_share(),
            e.finalize_share(),
            e.gate_min,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_queries.json");
    // Best-of-3 even in quick mode: the CI gate compares single timings,
    // and one noisy rep on a shared runner must not fail the job.
    let reps = 3;
    let mode = if quick { "quick" } else { "full" };
    println!("perfqueries: mode={mode} reps={reps}");
    println!(
        "{:<10} {:<10} {:>11} {:>11} {:>9} {:>15} {:>13}",
        "workload", "query", "interpreter", "encoded", "speedup", "join/finalize", "result"
    );

    let mut entries = Vec::new();

    // ---- SSB: the repeated-query star-schema workload the dictionary
    // cache is built for (text filters, multiway joins, fused aggregates).
    // Two gate tiers: the original smoke set must never lose to the
    // interpreter; the finalize-dominated flight-4 queries must hold the
    // ≥2× speedup the vectorized output pipeline delivers.
    let ssb_catalog = ssb::gen_catalog(1, 0x55B);
    let smoke = ["Q1.1", "Q2.1", "Q3.1", "Q4.1"];
    let finalize_gated = ["Q4.2", "Q4.3"];
    let ssb_queries: Vec<(String, String, f64)> = ssb::queries()
        .into_iter()
        .filter(|(name, _)| !quick || smoke.contains(name) || finalize_gated.contains(name))
        .map(|(name, sql)| {
            let gate = if finalize_gated.contains(&name) {
                2.0
            } else if smoke.contains(&name) {
                1.0
            } else {
                0.0
            };
            (name.to_string(), sql, gate)
        })
        .collect();
    run_workload(&mut entries, "ssb", &ssb_catalog, &ssb_queries, reps);

    // ---- Microbenchmark joins (§5.1 shapes): integer keys, grouped
    // aggregates, plus the projection-heavy plain join (Q1), which is
    // finalize-dominated and gated at 2×.
    let micro_catalog = micro::gen_catalog(&micro::MicroConfig::new(20_000, 4_096));
    let micro_queries: Vec<(String, String, f64)> = micro::queries()
        .into_iter()
        .filter(|(name, _)| !quick || *name == "Q1" || *name == "Q3")
        .map(|(name, sql)| {
            let gate = if name == "Q1" { 2.0 } else { 0.0 };
            (name.to_string(), sql.to_string(), gate)
        })
        .collect();
    run_workload(&mut entries, "micro", &micro_catalog, &micro_queries, reps);

    // ---- The Figure 5 matrix-multiplication query.
    let mm_catalog = matmul::gen_catalog(96, 1.0, matmul::ValueRange::Int7, 7);
    let mm_queries = vec![(
        "matmul96".to_string(),
        matmul::MATMUL_QUERY.to_string(),
        0.0,
    )];
    run_workload(&mut entries, "matmul", &mm_catalog, &mm_queries, reps);

    let payload = json(&entries, mode);
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // CI gate: every gated query must hold its minimum speedup (other
    // entries are informational).
    let mut failed = false;
    for e in entries.iter().filter(|e| e.gate_min > 0.0) {
        if e.speedup() < e.gate_min {
            eprintln!(
                "GATE: {}/{} encoded path {:.2}x below the {:.1}x floor \
                 (encoded {:.4}s vs interpreter {:.4}s)",
                e.workload,
                e.name,
                e.speedup(),
                e.gate_min,
                e.encoded_secs,
                e.interp_secs
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
