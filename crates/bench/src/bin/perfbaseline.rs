//! `perfbaseline` — reproducible host-kernel performance harness.
//!
//! Times the tiled kernel engine against the naive reference oracle on a
//! fixed set of GEMM / SpMM / SSB-join shapes, verifies the results are
//! bit-identical while doing so, and emits `BENCH_kernels.json` so every
//! future PR has a trajectory to beat.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin perfbaseline            # full sweep
//! cargo run --release -p tcudb-bench --bin perfbaseline -- --quick # CI smoke set
//! cargo run --release -p tcudb-bench --bin perfbaseline -- --out p.json
//! ```
//!
//! Exit codes: `0` success, `2` the tiled engine was slower than the
//! reference oracle on a smoke shape (the CI bench-smoke gate), `3` a
//! kernel result diverged from the oracle.

use std::hint::black_box;
use std::time::Instant;

use tcudb_tensor::gemm::{gemm_bt_with_threads, gemm_with_threads, GemmPrecision};
use tcudb_tensor::{engine, reference, spmm, CsrMatrix, DenseMatrix};

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    /// `C = A × B` with dense operands.
    Gemm,
    /// `C = A × Bᵀ` — the join orientation.
    GemmBt,
    /// TCU-SpMM on sparse operands vs. the dense reference on the same data.
    Spmm,
}

struct Shape {
    name: &'static str,
    kind: Kind,
    precision: GemmPrecision,
    m: usize,
    n: usize,
    k: usize,
    /// 0 → dense small integers, 1 → 0/1 one-hot rows, d>1 → ~1/d density.
    fill: u64,
    /// Included in `--quick` (CI smoke) mode.
    quick: bool,
}

const SHAPES: &[Shape] = &[
    Shape {
        // The Figure 3 shape the acceptance gate measures.
        name: "fig03_gemm_fp32_1024",
        kind: Kind::Gemm,
        precision: GemmPrecision::Fp32,
        m: 1024,
        n: 1024,
        k: 1024,
        fill: 0,
        quick: true,
    },
    Shape {
        name: "gemm_fp32_odd_517x233x129",
        kind: Kind::Gemm,
        precision: GemmPrecision::Fp32,
        m: 517,
        n: 233,
        k: 129,
        fill: 0,
        quick: true,
    },
    Shape {
        name: "gemm_half_1024",
        kind: Kind::Gemm,
        precision: GemmPrecision::Half,
        m: 1024,
        n: 1024,
        k: 1024,
        fill: 0,
        quick: false,
    },
    Shape {
        name: "gemm_int8_512",
        kind: Kind::Gemm,
        precision: GemmPrecision::Int8,
        m: 512,
        n: 512,
        k: 512,
        fill: 0,
        quick: false,
    },
    Shape {
        // One-hot fact × dimension join matrices, fp16 — the SSB §3 shape.
        name: "ssb_join_bt_half_8192x512x128",
        kind: Kind::GemmBt,
        precision: GemmPrecision::Half,
        m: 8192,
        n: 512,
        k: 128,
        fill: 1,
        quick: false,
    },
    Shape {
        name: "spmm_fp32_512_d6pct",
        kind: Kind::Spmm,
        precision: GemmPrecision::Fp32,
        m: 512,
        n: 512,
        k: 512,
        fill: 16,
        quick: true,
    },
    Shape {
        name: "spmm_fp32_1024_d3pct",
        kind: Kind::Spmm,
        precision: GemmPrecision::Fp32,
        m: 1024,
        n: 1024,
        k: 1024,
        fill: 32,
        quick: false,
    },
    Shape {
        // One-hot join operands: the sparse regime where zero-tile
        // skipping pays off (most 16×16 tile pairs never touch the TCU).
        name: "spmm_join_half_2048x2048x512",
        kind: Kind::Spmm,
        precision: GemmPrecision::Half,
        m: 2048,
        n: 2048,
        k: 512,
        fill: 1,
        quick: true,
    },
];

struct Entry {
    name: &'static str,
    kind: &'static str,
    precision: &'static str,
    m: usize,
    n: usize,
    k: usize,
    reference_secs: f64,
    tiled_1t_secs: f64,
    /// None for kernels with no threaded path (TCU-SpMM runs
    /// single-threaded); the JSON omits the mt fields rather than
    /// duplicating the 1t measurement.
    tiled_mt_secs: Option<f64>,
    threads: usize,
    extra: Option<(&'static str, f64)>,
    /// Part of the CI smoke gate (mirrors `Shape::quick`).
    gated: bool,
}

impl Entry {
    fn speedup_1t(&self) -> f64 {
        self.reference_secs / self.tiled_1t_secs
    }
    fn speedup_mt(&self) -> Option<f64> {
        self.tiled_mt_secs.map(|mt| self.reference_secs / mt)
    }
}

fn fill_matrix(rows: usize, cols: usize, seed: u64, fill: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(12345);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut m = DenseMatrix::zeros(rows, cols);
    match fill {
        // Dense small signed integers (exact in every precision).
        0 => {
            for v in m.data_mut().iter_mut() {
                *v = ((next() % 15) as f32) - 7.0;
            }
        }
        // One-hot rows: the 0/1 join encoding.
        1 => {
            for i in 0..rows {
                let j = (next() as usize) % cols.max(1);
                m.row_mut(i)[j] = 1.0;
            }
        }
        // Sparse, ~1/fill density.
        d => {
            for v in m.data_mut().iter_mut() {
                if next() % d == 0 {
                    *v = ((next() % 5) as f32) + 1.0;
                }
            }
        }
    }
    m
}

/// Best-of-`reps` wall-clock seconds of `f`, returning the last result.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

fn run_shape(shape: &Shape, reps: usize, threads: usize) -> Result<Entry, String> {
    let (m, n, k) = (shape.m, shape.n, shape.k);
    let precision = shape.precision;
    let a = fill_matrix(m, k, 0xA + m as u64, shape.fill);
    match shape.kind {
        Kind::Gemm => {
            let b = fill_matrix(k, n, 0xB + n as u64, shape.fill);
            let (ref_secs, expected) =
                best_secs(reps, || reference::gemm(&a, &b, precision).unwrap().0);
            let (t1, got1) = best_secs(reps, || gemm_with_threads(&a, &b, precision, 1).unwrap().0);
            // A separate mt measurement only exists when there is real
            // parallelism; on a 1-thread host it would just be a noisy
            // rerun of the 1t run.
            let mt = (threads > 1).then(|| {
                best_secs(reps, || {
                    gemm_with_threads(&a, &b, precision, threads).unwrap().0
                })
            });
            if got1 != expected || mt.as_ref().is_some_and(|(_, g)| *g != expected) {
                return Err(format!("{}: tiled result diverged from oracle", shape.name));
            }
            Ok(Entry {
                name: shape.name,
                kind: "gemm",
                precision: precision_label(precision),
                m,
                n,
                k,
                reference_secs: ref_secs,
                tiled_1t_secs: t1,
                tiled_mt_secs: mt.map(|(secs, _)| secs),
                threads,
                extra: None,
                gated: shape.quick,
            })
        }
        Kind::GemmBt => {
            let b = fill_matrix(n, k, 0xB + n as u64, shape.fill);
            let (ref_secs, expected) =
                best_secs(reps, || reference::gemm_bt(&a, &b, precision).unwrap().0);
            let (t1, got1) = best_secs(reps, || {
                gemm_bt_with_threads(&a, &b, precision, 1).unwrap().0
            });
            let mt = (threads > 1).then(|| {
                best_secs(reps, || {
                    gemm_bt_with_threads(&a, &b, precision, threads).unwrap().0
                })
            });
            if got1 != expected || mt.as_ref().is_some_and(|(_, g)| *g != expected) {
                return Err(format!("{}: tiled result diverged from oracle", shape.name));
            }
            Ok(Entry {
                name: shape.name,
                kind: "gemm_bt",
                precision: precision_label(precision),
                m,
                n,
                k,
                reference_secs: ref_secs,
                tiled_1t_secs: t1,
                tiled_mt_secs: mt.map(|(secs, _)| secs),
                threads,
                extra: None,
                gated: shape.quick,
            })
        }
        Kind::Spmm => {
            let b = fill_matrix(n, k, 0xB + n as u64, shape.fill);
            let a_csr = CsrMatrix::from_dense(&a);
            let b_csr = CsrMatrix::from_dense(&b);
            let (ref_secs, expected) =
                best_secs(reps, || reference::gemm_bt(&a, &b, precision).unwrap().0);
            let (t1, (got, stats)) =
                best_secs(reps, || spmm::tcu_spmm(&a_csr, &b_csr, precision).unwrap());
            if got != expected {
                return Err(format!("{}: SpMM result diverged from oracle", shape.name));
            }
            Ok(Entry {
                name: shape.name,
                kind: "spmm",
                precision: precision_label(precision),
                m,
                n,
                k,
                reference_secs: ref_secs,
                tiled_1t_secs: t1,
                tiled_mt_secs: None,
                threads: 1,
                extra: Some(("tile_skip_ratio", stats.skip_ratio())),
                gated: shape.quick,
            })
        }
    }
}

fn precision_label(p: GemmPrecision) -> &'static str {
    match p {
        GemmPrecision::Fp32 => "Fp32",
        GemmPrecision::Half => "Half",
        GemmPrecision::Int8 => "Int8",
        GemmPrecision::Int4 => "Int4",
    }
}

fn json(entries: &[Entry], mode: &str, threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"perfbaseline\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    let level = engine::simd_level();
    let (mr, nr) = level.lanes();
    out.push_str(&format!(
        "  \"engine\": {{\"simd_level\": \"{level:?}\", \"mr\": {mr}, \"nr\": {nr}, \"kc\": {}}},\n",
        engine::KC
    ));
    out.push_str(&format!("  \"threads_available\": {threads},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        // mt fields are omitted (not duplicated from 1t) for kernels with
        // no threaded path, e.g. TCU-SpMM.
        let mt = match (e.tiled_mt_secs, e.speedup_mt()) {
            (Some(secs), Some(speedup)) => {
                format!("\"tiled_mt_secs\": {secs:.6}, \"speedup_mt\": {speedup:.2}, ")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"precision\": \"{}\", \
             \"m\": {}, \"n\": {}, \"k\": {}, \
             \"reference_secs\": {:.6}, \"tiled_1t_secs\": {:.6}, \
             {}\"threads\": {}, \"speedup_1t\": {:.2}{}}}{}\n",
            e.name,
            e.kind,
            e.precision,
            e.m,
            e.n,
            e.k,
            e.reference_secs,
            e.tiled_1t_secs,
            mt,
            e.threads,
            e.speedup_1t(),
            e.extra
                .map(|(k, v)| format!(", \"{k}\": {v:.4}"))
                .unwrap_or_default(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_kernels.json");
    // Best-of-3 even in quick mode: the CI gate compares single timings,
    // and one noisy rep on a shared runner must not fail the job.
    let reps = 3;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mode = if quick { "quick" } else { "full" };
    println!("perfbaseline: mode={mode} reps={reps} threads={threads}");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "shape", "reference", "tiled 1t", "tiled mt", "x1t", "xmt"
    );

    let mut entries = Vec::new();
    for shape in SHAPES.iter().filter(|s| !quick || s.quick) {
        match run_shape(shape, reps, threads) {
            Ok(e) => {
                let (mt_secs, mt_speedup) = match (e.tiled_mt_secs, e.speedup_mt()) {
                    (Some(secs), Some(sp)) => (format!("{secs:>10.4}s"), format!("{sp:>8.2}x")),
                    _ => (format!("{:>11}", "-"), format!("{:>9}", "-")),
                };
                println!(
                    "{:<34} {:>10.4}s {:>10.4}s {} {:>8.2}x {}",
                    e.name,
                    e.reference_secs,
                    e.tiled_1t_secs,
                    mt_secs,
                    e.speedup_1t(),
                    mt_speedup
                );
                entries.push(e);
            }
            Err(msg) => {
                eprintln!("FATAL: {msg}");
                std::process::exit(3);
            }
        }
    }

    let payload = json(&entries, mode, threads);
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // CI gate: on the smoke shapes the tiled engine must never lose to
    // the reference oracle (full-only shapes are informational).
    let mut failed = false;
    for e in entries.iter().filter(|e| e.gated) {
        if e.speedup_1t() < 1.0 {
            eprintln!(
                "GATE: {} tiled engine ({:.4}s) slower than reference oracle ({:.4}s)",
                e.name, e.tiled_1t_secs, e.reference_secs
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
