//! `perfserve` — concurrent query-serving throughput harness.
//!
//! Replays a mixed read-only SSB + microbenchmark statement stream
//! against one shared [`TcuDb`] through the `tcudb-serve` worker-pool
//! scheduler at 1 / 2 / 4 / 8 closed-loop client threads, asserts every
//! served result is **byte-identical** to the serial execution of the
//! same statement, and emits `BENCH_serve.json` (QPS, p50/p95/p99
//! latency, plan-cache hit rate, coalescing/shed/timeout counters) so
//! every future PR has a serving trajectory to beat.  A final overload
//! scenario floods a one-worker server with a two-entry queue from 16
//! clients and gates that load shedding keeps the p99 of *admitted*
//! queries bounded.
//!
//! Throughput on a box with few cores comes from the serving layer
//! itself, not raw parallelism: the plan cache pays parse/analyze/cost
//! once per statement per epoch, and in-flight coalescing answers
//! concurrently submitted identical statements with one execution.  On a
//! many-core box the worker pool adds real parallelism on top.
//!
//! A socket section then measures the same engine behind the TCP front
//! end (`tcudb-net`): closed-loop socket clients verified byte-identical
//! against the same oracle (and gated against in-process latency on the
//! quick corpus), a 256-connection hold, and an **open-loop** ramp —
//! Poisson arrivals at increasing offered rates, latencies measured from
//! the *scheduled* arrival time — that reports the saturation QPS.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin perfserve            # full sweep
//! cargo run --release -p tcudb-bench --bin perfserve -- --quick # CI smoke
//! cargo run --release -p tcudb-bench --bin perfserve -- --out s.json
//! ```
//!
//! Exit codes: `0` success, `2` a gate missed (8-client QPS below the
//! floor: ≥ 3× the 1-client QPS in full mode, ≥ 1× in quick mode — CI
//! runners are noisy; the overload scenario never shed / blew its
//! admitted-p99 bound; fewer than 256 concurrent connections held; or —
//! quick mode — socket p95 above 1.5× the in-process p95), `3` a served
//! result diverged from the serial execution.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use tcudb_core::TcuDb;
use tcudb_datagen::{micro, ssb};
use tcudb_net::{Client, NetConfig, NetServer};
use tcudb_serve::{ServeConfig, Server};
use tcudb_storage::{Catalog, Table};

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct RunResult {
    clients: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    executed: u64,
    coalesced: u64,
    admission_waits: u64,
    shed: u64,
    timed_out: u64,
}

/// Outcome of the overload scenario: a deliberately under-provisioned
/// server (one worker, tiny queue) flooded by closed-loop clients.
struct OverloadResult {
    clients: usize,
    admitted: u64,
    shed: u64,
    timed_out: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// The bound enforced on `p99_ms`: `max(20 x unloaded p95, 50 ms)`.
    gate_p99_ms: f64,
}

/// The merged read-only serving catalog: SSB star schema + micro join
/// tables (names are disjoint).
fn serving_catalog(quick: bool) -> Catalog {
    let ssb_cat = ssb::gen_catalog(1, 0x55B);
    let micro_cat = micro::gen_catalog(&micro::MicroConfig::new(
        if quick { 10_000 } else { 20_000 },
        4_096,
    ));
    let mut cat = Catalog::new();
    for source in [&ssb_cat, &micro_cat] {
        for name in source.table_names() {
            let table = source.table(&name).expect("table exists");
            cat.register((*table).clone());
        }
    }
    cat
}

/// The mixed statement stream (one round; clients replay it `rounds`
/// times).
fn stream(quick: bool) -> Vec<(String, String)> {
    let smoke = ["Q1.1", "Q2.1", "Q3.2", "Q4.2"];
    let mut queries: Vec<(String, String)> = ssb::queries()
        .into_iter()
        .filter(|(name, _)| !quick || smoke.contains(name))
        .map(|(name, sql)| (format!("ssb/{name}"), sql))
        .collect();
    for (name, sql) in micro::queries() {
        if quick && name == "Q4" {
            continue;
        }
        queries.push((format!("micro/{name}"), sql.to_string()));
    }
    queries
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Drive `clients` closed-loop client threads through `rounds` replays of
/// the stream, verifying every result against the serial reference.
fn run_clients(
    db: &Arc<TcuDb>,
    queries: &[(String, String)],
    expected: &[Table],
    clients: usize,
    rounds: usize,
    workers: usize,
) -> RunResult {
    let server = Server::start(Arc::clone(db), ServeConfig::with_workers(workers));
    let barrier = Barrier::new(clients + 1);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let start = Mutex::new(None::<Instant>);

    std::thread::scope(|s| {
        for _ in 0..clients {
            let session = server.session();
            let barrier = &barrier;
            let latencies = &latencies;
            s.spawn(move || {
                let mut local = Vec::with_capacity(rounds * queries.len());
                barrier.wait();
                for _ in 0..rounds {
                    for (qi, (name, sql)) in queries.iter().enumerate() {
                        let t = Instant::now();
                        let out = session.execute(sql).expect("served query executes");
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        if out.table != expected[qi] {
                            eprintln!(
                                "FATAL: {name}: served result diverged from serial execution"
                            );
                            eprintln!("-- served --\n{}", out.table.format_preview(10));
                            eprintln!("-- serial --\n{}", expected[qi].format_preview(10));
                            std::process::exit(3);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
        barrier.wait();
        *start.lock().unwrap() = Some(Instant::now());
    });
    let wall = start
        .lock()
        .unwrap()
        .expect("started")
        .elapsed()
        .as_secs_f64();
    let stats = server.shutdown();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_queries = clients * rounds * queries.len();
    RunResult {
        clients,
        qps: total_queries as f64 / wall,
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
        executed: stats.executed,
        coalesced: stats.coalesced,
        admission_waits: stats.admission_waits,
        shed: stats.shed,
        timed_out: stats.timed_out,
    }
}

/// Flood a one-worker server whose queue is capped at two entries with
/// `clients` closed-loop threads.  Sheds are expected (that is the
/// point); admitted queries must keep a bounded tail because the queue
/// in front of them can never grow past the cap.
fn run_overload(
    db: &Arc<TcuDb>,
    queries: &[(String, String)],
    clients: usize,
    rounds: usize,
    gate_p99_ms: f64,
) -> OverloadResult {
    let server = Server::start(
        Arc::clone(db),
        ServeConfig {
            max_queue: 2,
            default_deadline: Some(std::time::Duration::from_secs(10)),
            ..ServeConfig::with_workers(1)
        },
    );
    let barrier = Barrier::new(clients + 1);
    let lat: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let shed = std::sync::atomic::AtomicU64::new(0);
    let timed_out = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        for c in 0..clients {
            let session = server.session();
            let barrier = &barrier;
            let lat = &lat;
            let shed = &shed;
            let timed_out = &timed_out;
            s.spawn(move || {
                use std::sync::atomic::Ordering;
                let mut local = Vec::new();
                barrier.wait();
                for r in 0..rounds {
                    for q in 0..queries.len() {
                        // Offset per client so distinct statements overlap.
                        let sql = &queries[(q + c + r) % queries.len()].1;
                        let t = Instant::now();
                        match session.execute(sql) {
                            Ok(_) => local.push(t.elapsed().as_secs_f64() * 1e3),
                            Err(tcudb_types::TcuError::Overloaded(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(tcudb_types::TcuError::DeadlineExceeded(_)) => {
                                timed_out.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("FATAL: overload client hit unexpected error: {e}");
                                std::process::exit(3);
                            }
                        }
                    }
                }
                lat.lock().unwrap().extend(local);
            });
        }
        barrier.wait();
    });
    server.shutdown();

    let mut lat = lat.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    OverloadResult {
        clients,
        admitted: lat.len() as u64,
        shed: shed.into_inner(),
        timed_out: timed_out.into_inner(),
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
        gate_p99_ms,
    }
}

/// One closed-loop socket sweep point.
struct SocketRun {
    clients: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// One offered-rate step of the open-loop (Poisson) ramp.
struct OpenLoopPoint {
    offered_qps: f64,
    achieved_qps: f64,
    completed: u64,
    shed: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Everything the socket section measured.
struct SocketSection {
    connections_held: u64,
    closed: Vec<SocketRun>,
    open: Vec<OpenLoopPoint>,
    saturation_qps: f64,
}

/// Deterministic splitmix64 — exponential inter-arrival sampling.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn socket_client(addr: SocketAddr) -> Client {
    let mut attempt = 0;
    loop {
        match Client::connect(addr) {
            Ok(client) => {
                client
                    .set_read_timeout(Some(Duration::from_secs(300)))
                    .expect("set read timeout");
                return client;
            }
            // Listen backlog overflow under the 256-connection stampede:
            // back off and retry rather than failing the harness.
            Err(_) if attempt < 50 => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("FATAL: socket client cannot connect: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Closed-loop socket clients replaying the stream, every result checked
/// against the serial oracle.
fn run_socket_clients(
    addr: SocketAddr,
    queries: &[(String, String)],
    expected: &[Table],
    clients: usize,
    rounds: usize,
) -> SocketRun {
    let barrier = Barrier::new(clients + 1);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let start = Mutex::new(None::<Instant>);

    std::thread::scope(|s| {
        for _ in 0..clients {
            let barrier = &barrier;
            let latencies = &latencies;
            s.spawn(move || {
                let mut client = socket_client(addr);
                let mut local = Vec::with_capacity(rounds * queries.len());
                barrier.wait();
                for _ in 0..rounds {
                    for (qi, (name, sql)) in queries.iter().enumerate() {
                        let t = Instant::now();
                        let table = client.query(sql).expect("socket query executes");
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        if table != expected[qi] {
                            eprintln!(
                                "FATAL: {name}: socket result diverged from serial execution"
                            );
                            std::process::exit(3);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
                client.goodbye();
            });
        }
        barrier.wait();
        *start.lock().unwrap() = Some(Instant::now());
    });
    let wall = start
        .lock()
        .unwrap()
        .expect("started")
        .elapsed()
        .as_secs_f64();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SocketRun {
        clients,
        qps: (clients * rounds * queries.len()) as f64 / wall,
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
    }
}

/// Hold `n` connections open simultaneously — each serving one verified
/// statement while all `n` stay connected — and report the peak `active`
/// count the reactor saw.
fn hold_connections(
    server: &NetServer,
    queries: &[(String, String)],
    expected: &[Table],
    n: usize,
) -> u64 {
    let addr = server.local_addr();
    let connected = Barrier::new(n + 1);
    let done = Barrier::new(n + 1);
    let mut peak = 0;
    std::thread::scope(|s| {
        for c in 0..n {
            let connected = &connected;
            let done = &done;
            s.spawn(move || {
                let mut client = socket_client(addr);
                connected.wait();
                let qi = c % queries.len();
                let table = client.query(&queries[qi].1).expect("held-connection query");
                if table != expected[qi] {
                    eprintln!("FATAL: {}: held-connection result diverged", queries[qi].0);
                    std::process::exit(3);
                }
                // Stay connected until the census below is done.
                done.wait();
                client.goodbye();
            });
        }
        connected.wait();
        // Every client is connected and has a statement in flight or
        // answered; the reactor's active count is the census.
        peak = server.stats().active;
        done.wait();
    });
    peak
}

/// One open-loop step: Poisson arrivals at `rate` QPS dispatched over a
/// fixed fleet of connections.  Latency is measured from each arrival's
/// *scheduled* time, so queueing delay (including waiting for a free
/// connection) counts against the server — the open-loop property that
/// closed-loop sweeps cannot capture.
fn run_open_loop(
    addr: SocketAddr,
    queries: &[(String, String)],
    rate: f64,
    duration_s: f64,
    conns: usize,
    seed: u64,
) -> OpenLoopPoint {
    let ops = ((rate * duration_s).ceil() as usize).clamp(conns, 6_000);
    let mut rng = Rng(seed);
    let mut arrivals = Vec::with_capacity(ops);
    let mut at = 0.0f64;
    for _ in 0..ops {
        // Exponential inter-arrival: -ln(1 - u) / rate.
        at += -(1.0 - rng.unit_f64()).ln() / rate;
        arrivals.push(at);
    }

    let next = AtomicUsize::new(0);
    let shed = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let ready = Barrier::new(conns + 1);
    let begun = Mutex::new(None::<Instant>);

    std::thread::scope(|s| {
        for _ in 0..conns {
            let next = &next;
            let shed = &shed;
            let latencies = &latencies;
            let ready = &ready;
            let begun = &begun;
            let arrivals = &arrivals;
            s.spawn(move || {
                let mut client = socket_client(addr);
                ready.wait();
                let start = begun.lock().unwrap().expect("start stamped");
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= arrivals.len() {
                        break;
                    }
                    let scheduled = Duration::from_secs_f64(arrivals[i]);
                    if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    match client.query(&queries[i % queries.len()].1) {
                        Ok(_) => {
                            let lat = start.elapsed().as_secs_f64() - arrivals[i];
                            local.push(lat * 1e3);
                        }
                        Err(tcudb_types::TcuError::Overloaded(_)) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("FATAL: open-loop client hit unexpected error: {e}");
                            std::process::exit(3);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
                client.goodbye();
            });
        }
        // Stamp the common epoch before releasing the fleet.
        *begun.lock().unwrap() = Some(Instant::now());
        ready.wait();
    });
    let start = begun.lock().unwrap().expect("started");
    let wall = start.elapsed().as_secs_f64();

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    OpenLoopPoint {
        offered_qps: rate,
        achieved_qps: lat.len() as f64 / wall,
        completed: lat.len() as u64,
        shed: shed.into_inner(),
        p50_ms: percentile(&lat, 0.50),
        p95_ms: percentile(&lat, 0.95),
        p99_ms: percentile(&lat, 0.99),
    }
}

/// The full socket section: closed-loop sweep, connection hold, and the
/// open-loop ramp to saturation.
fn run_socket_section(
    db: &Arc<TcuDb>,
    queries: &[(String, String)],
    expected: &[Table],
    rounds: usize,
    workers: usize,
    quick: bool,
) -> SocketSection {
    let server = match NetServer::start(
        Arc::clone(db),
        NetConfig {
            max_connections: 1024,
            serve: ServeConfig {
                max_queue: 1024,
                ..ServeConfig::with_workers(workers)
            },
            ..NetConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("FATAL: cannot start socket server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();

    let mut closed = Vec::new();
    for &clients in &[1usize, 8] {
        let r = run_socket_clients(addr, queries, expected, clients, rounds);
        println!(
            "socket: clients={} {:>8.1} qps p50={:.3}ms p95={:.3}ms p99={:.3}ms",
            r.clients, r.qps, r.p50_ms, r.p95_ms, r.p99_ms
        );
        closed.push(r);
    }

    let connections_held = hold_connections(&server, queries, expected, 256);
    println!("socket: held {connections_held} concurrent connections");

    // Open-loop ramp: offered rate starts below the closed-loop capacity
    // estimate and grows until the server visibly saturates (achieved
    // rate falls behind offered, or sheds fire).
    let capacity_est = closed.last().map(|r| r.qps).unwrap_or(100.0);
    let mut rate = (capacity_est * 0.4).max(20.0);
    let duration_s = if quick { 1.0 } else { 2.0 };
    let conns = if quick { 32 } else { 64 };
    let mut open = Vec::new();
    let mut saturation_qps = 0.0f64;
    for step in 0..6 {
        let p = run_open_loop(
            addr,
            queries,
            rate,
            duration_s,
            conns,
            0x09E2_10AD ^ step as u64,
        );
        println!(
            "open-loop: offered={:>8.1} achieved={:>8.1} completed={} shed={} \
             p50={:.3}ms p95={:.3}ms p99={:.3}ms",
            p.offered_qps, p.achieved_qps, p.completed, p.shed, p.p50_ms, p.p95_ms, p.p99_ms
        );
        saturation_qps = saturation_qps.max(p.achieved_qps);
        let saturated = p.achieved_qps < 0.85 * p.offered_qps || p.shed > 0;
        open.push(p);
        if saturated {
            break;
        }
        rate *= 1.6;
    }

    if let Err(e) = server.shutdown() {
        eprintln!("perfserve: socket server shutdown reported: {e}");
    }
    SocketSection {
        connections_held,
        closed,
        open,
        saturation_qps,
    }
}

#[allow(clippy::too_many_arguments)]
fn json(
    mode: &str,
    workers: usize,
    stream_len: usize,
    rounds: usize,
    serial_qps: f64,
    runs: &[RunResult],
    overload: &OverloadResult,
    socket: &SocketSection,
    db: &TcuDb,
) -> String {
    let qps_of = |clients: usize| {
        runs.iter()
            .find(|r| r.clients == clients)
            .map(|r| r.qps)
            .unwrap_or(0.0)
    };
    let scaling = if qps_of(1) > 0.0 {
        qps_of(8) / qps_of(1)
    } else {
        0.0
    };
    let cache = db.plan_cache_stats();
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"perfserve\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"stream_len\": {stream_len},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"serial_qps\": {serial_qps:.1},\n"));
    out.push_str(&format!("  \"qps_8_over_1\": {scaling:.2},\n"));
    out.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    ));
    out.push_str(&format!(
        "  \"overload\": {{\"clients\": {}, \"workers\": 1, \"max_queue\": 2, \
         \"admitted\": {}, \"shed\": {}, \"timed_out\": {}, \"p50_ms\": {:.3}, \
         \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"gate_p99_ms\": {:.3}}},\n",
        overload.clients,
        overload.admitted,
        overload.shed,
        overload.timed_out,
        overload.p50_ms,
        overload.p95_ms,
        overload.p99_ms,
        overload.gate_p99_ms,
    ));
    let inproc_p95 = runs
        .iter()
        .find(|r| r.clients == 1)
        .map(|r| r.p95_ms)
        .unwrap_or(0.0);
    let socket_p95 = socket
        .closed
        .iter()
        .find(|r| r.clients == 1)
        .map(|r| r.p95_ms)
        .unwrap_or(0.0);
    out.push_str("  \"socket\": {\n");
    out.push_str(&format!(
        "    \"connections_held\": {},\n",
        socket.connections_held
    ));
    out.push_str(&format!(
        "    \"inprocess_p95_ms\": {inproc_p95:.3},\n    \"socket_p95_ms\": {socket_p95:.3},\n"
    ));
    out.push_str(&format!(
        "    \"overhead_p95\": {:.2},\n",
        if inproc_p95 > 0.0 {
            socket_p95 / inproc_p95
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "    \"saturation_qps\": {:.1},\n",
        socket.saturation_qps
    ));
    out.push_str("    \"closed_loop\": [\n");
    for (i, r) in socket.closed.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"clients\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}}}{}\n",
            r.clients,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if i + 1 < socket.closed.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str("    \"open_loop\": [\n");
    for (i, p) in socket.open.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"completed\": {}, \
             \"shed\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            p.offered_qps,
            p.achieved_qps,
            p.completed,
            p.shed,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            if i + 1 < socket.open.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"speedup_vs_1\": {:.2}, \"executed\": {}, \"coalesced\": {}, \
             \"admission_waits\": {}, \"shed\": {}, \"timed_out\": {}}}{}\n",
            r.clients,
            r.qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if qps_of(1) > 0.0 {
                r.qps / qps_of(1)
            } else {
                0.0
            },
            r.executed,
            r.coalesced,
            r.admission_waits,
            r.shed,
            r.timed_out,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_serve.json");
    let rounds = if quick { 3 } else { 6 };
    let mode = if quick { "quick" } else { "full" };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let queries = stream(quick);
    println!(
        "perfserve: mode={mode} stream={} queries rounds={rounds} workers={workers}",
        queries.len()
    );

    let db = Arc::new(TcuDb::default());
    db.set_catalog(serving_catalog(quick));

    // ---- Serial reference pass: records the expected result of every
    // statement and warms the dictionary + plan caches (the serving
    // regime this harness measures is repeated statements).
    let expected: Vec<Table> = queries
        .iter()
        .map(|(_, sql)| db.execute(sql).expect("serial query executes").table)
        .collect();

    // ---- Serial throughput over the same stream (no serving layer).
    let t = Instant::now();
    for _ in 0..rounds {
        for (qi, (name, sql)) in queries.iter().enumerate() {
            let out = db.execute(sql).expect("serial query executes");
            if out.table != expected[qi] {
                eprintln!("FATAL: {name}: serial re-execution diverged");
                std::process::exit(3);
            }
        }
    }
    let serial_qps = (rounds * queries.len()) as f64 / t.elapsed().as_secs_f64();
    println!("serial: {serial_qps:>8.1} qps");
    println!(
        "{:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "clients",
        "qps",
        "vs 1",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "executed",
        "coalesced",
        "adm.waits"
    );

    // ---- Served sweeps.
    let mut runs = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let r = run_clients(&db, &queries, &expected, clients, rounds, workers);
        println!(
            "{:>7} {:>10.1} {:>8.2}x {:>9.3} {:>9.3} {:>9.3} {:>9} {:>10} {:>10}",
            r.clients,
            r.qps,
            r.qps / runs.first().map(|f: &RunResult| f.qps).unwrap_or(r.qps),
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.executed,
            r.coalesced,
            r.admission_waits
        );
        runs.push(r);
    }

    // ---- Overload scenario: 16 closed-loop clients against one worker
    // with a two-entry queue.  Shedding keeps the queue ahead of any
    // admitted query short, so the admitted tail stays bounded even
    // though the offered load is ~16x capacity.
    // An admitted query runs behind at most 2 queued + 1 executing
    // statements; 20x the unloaded p95 (floored against timer jitter on
    // sub-ms streams) is a generous but real ceiling — an unbounded
    // queue under this flood would blow straight through it.
    let gate_p99_ms = (20.0 * runs[0].p95_ms).max(50.0);
    let overload = run_overload(&db, &queries, 16, if quick { 2 } else { 3 }, gate_p99_ms);
    println!(
        "overload: clients={} admitted={} shed={} timed_out={} p50={:.3}ms p95={:.3}ms \
         p99={:.3}ms (gate {:.1}ms)",
        overload.clients,
        overload.admitted,
        overload.shed,
        overload.timed_out,
        overload.p50_ms,
        overload.p95_ms,
        overload.p99_ms,
        overload.gate_p99_ms
    );

    // ---- Socket section: the same engine behind the TCP front end.
    let socket = run_socket_section(&db, &queries, &expected, rounds, workers, quick);

    let payload = json(
        mode,
        workers,
        queries.len(),
        rounds,
        serial_qps,
        &runs,
        &overload,
        &socket,
        &db,
    );
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // ---- Throughput gate: the serving layer must scale the QPS of a
    // replayed statement stream.  Full runs (committed BENCH_serve.json)
    // require >= 3x at 8 clients; CI quick runs on noisy shared runners
    // only require that concurrency never LOSES throughput.
    let qps1 = runs[0].qps;
    let qps8 = runs.last().expect("runs").qps;
    let floor = if quick { 1.0 } else { 3.0 };
    if qps8 < qps1 * floor {
        eprintln!(
            "GATE: 8-client QPS {qps8:.1} below {floor:.1}x of 1-client QPS {qps1:.1} \
             ({:.2}x)",
            qps8 / qps1
        );
        std::process::exit(2);
    }

    // ---- Overload gate: the flood must actually overload (sheds fire),
    // and shedding must keep the admitted tail bounded.
    if overload.shed == 0 {
        eprintln!(
            "GATE: overload flood was never shed (admitted={}) — queue bound not exercised",
            overload.admitted
        );
        std::process::exit(2);
    }
    if overload.p99_ms > overload.gate_p99_ms {
        eprintln!(
            "GATE: overload admitted p99 {:.3}ms exceeds {:.1}ms — \
             shedding failed to bound the tail",
            overload.p99_ms, overload.gate_p99_ms
        );
        std::process::exit(2);
    }

    // ---- Socket gates: the front end must hold 256 concurrent
    // connections, and (on the quick corpus, where CI watches it) the
    // wire protocol + reactor may cost at most 1.5x the in-process p95.
    if socket.connections_held < 256 {
        eprintln!(
            "GATE: only {} concurrent connections held (need 256)",
            socket.connections_held
        );
        std::process::exit(2);
    }
    if quick {
        let inproc_p95 = runs[0].p95_ms;
        let socket_p95 = socket.closed[0].p95_ms;
        if socket_p95 > 1.5 * inproc_p95 {
            eprintln!(
                "GATE: socket p95 {socket_p95:.3}ms exceeds 1.5x in-process p95 \
                 {inproc_p95:.3}ms ({:.2}x)",
                socket_p95 / inproc_p95
            );
            std::process::exit(2);
        }
    }
    if socket.saturation_qps <= 0.0 {
        eprintln!("GATE: open-loop ramp produced no completed queries");
        std::process::exit(2);
    }
}
