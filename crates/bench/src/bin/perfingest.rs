//! `perfingest` — durable-ingest throughput and recovery-time harness.
//!
//! Streams batched `append_rows` commits into one [`TcuDb`] under three
//! durability settings — in-memory (no WAL), WAL with `EveryCommit`
//! fsync (ack ⇒ durable, the crash-oracle mode), and WAL with
//! `EveryN(32)` group commit — then measures how recovery time grows
//! with log length by reopening databases whose WAL holds progressively
//! more unreplayed commits.  Every reopened database is checked against
//! the row count that was acknowledged before the close, and the run
//! emits `BENCH_ingest.json` so future PRs have an ingest/recovery
//! trajectory to beat.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin perfingest            # full sweep
//! cargo run --release -p tcudb-bench --bin perfingest -- --quick # CI smoke
//! cargo run --release -p tcudb-bench --bin perfingest -- --out i.json
//! ```
//!
//! Exit codes: `0` success, `2` durability-overhead gate missed (WAL
//! `EveryCommit` ingest below 1% of in-memory ingest — durability must
//! never be pathologically slow), `3` a reopened database disagreed with
//! the acknowledged state.

use std::path::PathBuf;
use std::time::Instant;

use tcudb_core::{EngineConfig, TcuDb};
use tcudb_storage::{ColumnDef, DurabilityOptions, FlushPolicy, Schema, Table};
use tcudb_types::{DataType, Value};

const TABLE: &str = "ingest";

/// One measured ingest configuration.
struct IngestResult {
    mode: &'static str,
    rows: usize,
    batches: usize,
    rows_per_sec: f64,
    wall_ms: f64,
}

/// One measured recovery run.
struct RecoveryResult {
    commits: usize,
    rows: usize,
    wal_bytes: u64,
    recovery_ms: f64,
    replayed_commits: u64,
}

/// A scratch directory under the system temp dir, removed on drop.
struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let path =
            std::env::temp_dir().join(format!("tcudb-perfingest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn ingest_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", DataType::Int64),
        ColumnDef::new("val", DataType::Int64),
    ])
}

/// Deterministic batch `b` of `batch_rows` rows.
fn batch(b: usize, batch_rows: usize) -> Vec<Vec<Value>> {
    (0..batch_rows)
        .map(|i| {
            let id = (b * batch_rows + i) as i64;
            vec![
                Value::Int(id),
                Value::Int(id.wrapping_mul(2_654_435_761) % 997),
            ]
        })
        .collect()
}

/// Append `batches` batches into a fresh `ingest` table and return the
/// measured throughput.  The registration commit is outside the timed
/// region; the appends are what this harness measures.
fn run_ingest(db: &TcuDb, mode: &'static str, batches: usize, batch_rows: usize) -> IngestResult {
    db.try_register_table(Table::new(TABLE, ingest_schema()))
        .expect("register ingest table");
    let t = Instant::now();
    for b in 0..batches {
        db.append_rows(TABLE, batch(b, batch_rows))
            .expect("append batch");
    }
    let wall = t.elapsed().as_secs_f64();
    let rows = batches * batch_rows;
    IngestResult {
        mode,
        rows,
        batches,
        rows_per_sec: rows as f64 / wall,
        wall_ms: wall * 1e3,
    }
}

fn rows_in(db: &TcuDb) -> usize {
    db.snapshot()
        .catalog()
        .table(TABLE)
        .map(|t| t.num_rows())
        .unwrap_or(0)
}

/// Total bytes of WAL files in `dir` (the unreplayed log the next open
/// must scan).
fn wal_bytes_in(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".log") {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Build a database whose WAL holds `commits` append commits past the
/// last checkpoint, close it, and time the recovering reopen.
fn run_recovery(dir: &ScratchDir, commits: usize, batch_rows: usize) -> RecoveryResult {
    let _ = std::fs::remove_dir_all(&dir.path);
    std::fs::create_dir_all(&dir.path).expect("recreate scratch dir");
    let options = DurabilityOptions {
        flush_policy: FlushPolicy::EveryN(32),
        ..DurabilityOptions::strict_manual()
    };
    let db = TcuDb::open_with(&dir.path, EngineConfig::default(), options.clone())
        .expect("open durable db");
    db.try_register_table(Table::new(TABLE, ingest_schema()))
        .expect("register ingest table");
    for b in 0..commits {
        db.append_rows(TABLE, batch(b, batch_rows))
            .expect("append batch");
    }
    let acked_rows = rows_in(&db);
    drop(db);

    let wal_bytes = wal_bytes_in(&dir.path);
    let t = Instant::now();
    let db =
        TcuDb::open_with(&dir.path, EngineConfig::default(), options).expect("recovering reopen");
    let recovery_ms = t.elapsed().as_secs_f64() * 1e3;
    let report = db
        .recovery_report()
        .expect("durable db has a report")
        .clone();
    let recovered_rows = rows_in(&db);
    if recovered_rows != acked_rows {
        eprintln!("FATAL: recovery returned {recovered_rows} rows, {acked_rows} were acknowledged");
        std::process::exit(3);
    }
    RecoveryResult {
        commits,
        rows: acked_rows,
        wal_bytes,
        recovery_ms,
        replayed_commits: report.replayed_commits,
    }
}

fn json(
    mode: &str,
    batch_rows: usize,
    ingests: &[IngestResult],
    recoveries: &[RecoveryResult],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"generated_by\": \"perfingest\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"batch_rows\": {batch_rows},\n"));
    out.push_str("  \"ingest\": [\n");
    for (i, r) in ingests.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"rows\": {}, \"batches\": {}, \
             \"rows_per_sec\": {:.0}, \"wall_ms\": {:.1}}}{}\n",
            r.mode,
            r.rows,
            r.batches,
            r.rows_per_sec,
            r.wall_ms,
            if i + 1 < ingests.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"commits\": {}, \"rows\": {}, \"wal_bytes\": {}, \
             \"recovery_ms\": {:.2}, \"replayed_commits\": {}}}{}\n",
            r.commits,
            r.rows,
            r.wal_bytes,
            r.recovery_ms,
            r.replayed_commits,
            if i + 1 < recoveries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("BENCH_ingest.json");
    let mode = if quick { "quick" } else { "full" };
    let (batches, batch_rows) = if quick { (40, 500) } else { (200, 1_000) };
    let recovery_commits: &[usize] = if quick {
        &[10, 20, 40]
    } else {
        &[25, 50, 100, 200]
    };

    println!("perfingest: mode={mode} batches={batches} batch_rows={batch_rows}");
    println!(
        "{:>18} {:>10} {:>14} {:>10}",
        "mode", "rows", "rows/sec", "wall ms"
    );

    // ---- Ingest sweeps: same batched workload, three durability settings.
    let mut ingests = Vec::new();

    let db = TcuDb::default();
    ingests.push(run_ingest(&db, "memory", batches, batch_rows));

    let scratch = ScratchDir::new("wal-every-commit");
    let db = TcuDb::open_with(
        &scratch.path,
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("open durable db");
    ingests.push(run_ingest(&db, "wal-every-commit", batches, batch_rows));
    drop(db);
    drop(scratch);

    let scratch = ScratchDir::new("wal-group-32");
    let db = TcuDb::open_with(
        &scratch.path,
        EngineConfig::default(),
        DurabilityOptions {
            flush_policy: FlushPolicy::EveryN(32),
            ..DurabilityOptions::strict_manual()
        },
    )
    .expect("open durable db");
    ingests.push(run_ingest(&db, "wal-group-32", batches, batch_rows));
    drop(db);
    drop(scratch);

    for r in &ingests {
        println!(
            "{:>18} {:>10} {:>14.0} {:>10.1}",
            r.mode, r.rows, r.rows_per_sec, r.wall_ms
        );
    }

    // ---- Recovery time vs log length: reopen with a growing unreplayed
    // WAL, verifying the acknowledged row count survives each time.
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "commits", "rows", "wal bytes", "recovery ms", "replayed"
    );
    let scratch = ScratchDir::new("recovery");
    let mut recoveries = Vec::new();
    for &commits in recovery_commits {
        let r = run_recovery(&scratch, commits, batch_rows);
        println!(
            "{:>10} {:>10} {:>12} {:>12.2} {:>10}",
            r.commits, r.rows, r.wal_bytes, r.recovery_ms, r.replayed_commits
        );
        recoveries.push(r);
    }
    drop(scratch);

    let payload = json(mode, batch_rows, &ingests, &recoveries);
    if let Err(e) = std::fs::write(out_path, &payload) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    // ---- Overhead gate: per-commit fsync costs real throughput, but a
    // WAL that is more than 100x slower than memory ingest means the
    // durable path is rewriting or re-syncing far more than one commit's
    // worth of bytes.
    let memory = ingests[0].rows_per_sec;
    let durable = ingests[1].rows_per_sec;
    if durable < memory * 0.01 {
        eprintln!(
            "GATE: WAL EveryCommit ingest {durable:.0} rows/sec below 1% of in-memory \
             {memory:.0} rows/sec"
        );
        std::process::exit(2);
    }
}
