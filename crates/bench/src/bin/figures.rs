//! `figures` — regenerate every table and figure of the paper as text.
//!
//! ```text
//! cargo run --release -p tcudb-bench --bin figures -- --all
//! cargo run --release -p tcudb-bench --bin figures -- --fig7 --fig9
//! cargo run --release -p tcudb-bench --bin figures -- --all --full   # paper-scale sweeps
//! ```

use tcudb_bench as bench;
use tcudb_datagen::em;
use tcudb_device::DeviceProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let all = has("--all") || args.is_empty();
    let full = has("--full");
    let device = DeviceProfile::rtx_3090();

    println!(
        "TCUDB-RS experiment harness (simulated device: {})",
        device.name
    );
    println!(
        "mode: {}",
        if full {
            "full (paper-scale)"
        } else {
            "mini (default)"
        }
    );
    println!();

    if all || has("--fig3") {
        fig3(&device, full);
    }
    if all || has("--fig7") {
        fig7(&device, full);
    }
    if all || has("--fig8") {
        fig8(&device, full);
    }
    if all || has("--fig9") {
        fig9(&device, full);
    }
    if all || has("--fig10") {
        fig10(&device, full);
    }
    if all || has("--table1") {
        table1(full);
    }
    if all || has("--table23") {
        table23();
    }
    if all || has("--fig11") {
        fig11(&device, full);
    }
    if all || has("--table4") {
        table4();
    }
    if all || has("--fig12") {
        fig12(&device, full);
    }
    if all || has("--fig13") {
        fig13(&device, full);
    }
    if all || has("--fig14") {
        fig14(full);
    }
}

fn header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

fn print_comparisons(rows: &[bench::Comparison]) {
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "config", "MonetDB (ms)", "YDB (ms)", "TCUDB (ms)", "vs YDB", "vs CPU"
    );
    for c in rows {
        println!(
            "{:<16} {:>14.3} {:>14.3} {:>14.3} {:>9.2}x {:>9.2}x",
            c.label,
            c.monet * 1e3,
            c.ydb * 1e3,
            c.tcudb * 1e3,
            c.speedup_vs_ydb(),
            c.speedup_vs_monet()
        );
    }
    println!();
}

fn fig3(device: &DeviceProfile, full: bool) {
    header("Figure 3: square GEMM latency, CUDA cores vs TCUs");
    let dims: &[usize] = if full {
        &[1024, 2048, 4096, 8192, 16384]
    } else {
        &[1024, 2048, 4096, 8192]
    };
    let rows = bench::fig3_gemm(dims, device);
    let base = rows[0].cuda_seconds;
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "dims", "CUDA (ms)", "TCU (ms)", "CUDA (rel)", "TCU (rel)", "speedup"
    );
    for r in rows {
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.2} {:>12.2} {:>7.2}x",
            format!("{0}x{0}", r.dim),
            r.cuda_seconds * 1e3,
            r.tcu_seconds * 1e3,
            r.cuda_seconds / base,
            r.tcu_seconds / base,
            r.cuda_seconds / r.tcu_seconds
        );
    }
    println!();
}

fn fig7(device: &DeviceProfile, full: bool) {
    header("Figure 7: Q1/Q3/Q4 vs number of records (32 distinct values)");
    let records: &[usize] = if full {
        &[4096, 8192, 16384, 32768]
    } else {
        &[4096, 8192, 16384]
    };
    let results = bench::fig7_micro_records(records, 32, device).expect("fig7 runs");
    for (query, rows) in results {
        println!("--- {query} ---");
        print_comparisons(&rows);
    }
}

fn fig8(device: &DeviceProfile, full: bool) {
    header("Figure 8: Q1/Q3/Q4 vs number of distinct values (4096 records)");
    let distinct: &[usize] = if full {
        &[32, 64, 128, 256, 512, 1024, 2048, 4096]
    } else {
        &[32, 128, 512, 2048, 4096]
    };
    let results = bench::fig8_micro_distinct(4096, distinct, device).expect("fig8 runs");
    for (query, rows) in results {
        println!("--- {query} ---");
        print_comparisons(&rows);
    }
}

fn fig9(device: &DeviceProfile, full: bool) {
    header("Figure 9: Star Schema Benchmark (mini scale, see EXPERIMENTS.md)");
    let sfs: &[usize] = if full { &[1, 2, 4, 8] } else { &[1, 2] };
    let results = bench::fig9_ssb(sfs, full, device).expect("fig9 runs");
    for (sf, rows) in results {
        println!("--- scale factor {sf} ---");
        print_comparisons(&rows);
    }
}

fn fig10(device: &DeviceProfile, full: bool) {
    header("Figure 10: matrix-multiplication query (executed, mini dims)");
    let dims: &[usize] = if full {
        &[64, 128, 256, 512]
    } else {
        &[64, 128, 256]
    };
    let rows = bench::fig10_matmul(dims, device).expect("fig10 runs");
    print_comparisons(&rows);

    header("Figure 10 (projected at paper scale via the cost model)");
    let proj = bench::fig10_projection(&[4096, 8192, 16384, 32768, 65536], device);
    println!(
        "{:<10} {:>28} {:>14} {:>14} {:>10}",
        "dims", "TCU plan", "YDB (s)", "TCUDB (s)", "speedup"
    );
    for p in proj {
        println!(
            "{:<10} {:>28} {:>14.3} {:>14.3} {:>9.2}x",
            p.dim,
            p.plan,
            p.ydb_seconds,
            p.tcudb_seconds,
            p.ydb_seconds / p.tcudb_seconds
        );
    }
    println!();
}

fn table1(full: bool) {
    header("Table 1: MAPE of matrix multiplication vs value range (fp16 inputs)");
    let dims: &[usize] = if full {
        &[128, 256, 512, 1024]
    } else {
        &[64, 128, 256]
    };
    let rows = bench::table1_mape(dims, 7);
    print!("{:<22}", "value range");
    for d in dims {
        print!(" {:>12}", format!("{d}x{d}"));
    }
    println!();
    for row in rows {
        print!("{:<22}", row.range);
        for (_, mape) in row.mape_by_dim {
            print!(" {:>11.5}%", mape);
        }
        println!();
    }
    println!();
}

fn table23() {
    header("Tables 2 & 3: distinct values per attribute of the EM datasets");
    for (name, attrs) in bench::table23_em_stats() {
        println!("--- {name} ---");
        for (attr, distinct) in attrs {
            println!("  {attr:<12} {distinct}");
        }
    }
    println!();
}

fn fig11(device: &DeviceProfile, full: bool) {
    header("Figure 11(a): EM blocking on BeerAdvo-RateBeer");
    let rows = bench::fig11_entity_matching(&em::beer_advo_ratebeer(), device).expect("fig11a");
    print_comparisons(&rows);
    header("Figure 11(b): EM blocking on iTunes-Amazon");
    let rows = bench::fig11_entity_matching(&em::itunes_amazon(), device).expect("fig11b");
    print_comparisons(&rows);
    if full {
        header("Figure 11(c): EM blocking on scaled iTunes-Amazon");
        let rows =
            bench::fig11_entity_matching(&em::itunes_amazon_scaled(), device).expect("fig11c");
        print_comparisons(&rows);
    }
}

fn table4() {
    header("Table 4: reduced road-network graphs");
    println!("{:<10} {:>10}", "#nodes", "#edges");
    for (n, e) in bench::table4_graphs() {
        println!("{n:<10} {e:>10}");
    }
    println!();
}

fn fig12(device: &DeviceProfile, full: bool) {
    header("Figure 12: PageRank queries PR Q1/Q2/Q3, TCUDB vs YDB vs CPU");
    let sizes: &[usize] = if full { &[0, 1, 2, 3, 4] } else { &[0, 1, 3] };
    let results = bench::fig12_pagerank(sizes, device).expect("fig12 runs");
    for (query, rows) in results {
        println!("--- {query} ---");
        print_comparisons(&rows);
    }
}

fn fig13(device: &DeviceProfile, full: bool) {
    header("Figure 13: PR Q3 core join+aggregation across engines");
    let sizes: &[usize] = if full {
        &[0, 1, 2, 3, 4, 5, 6]
    } else {
        &[0, 1, 3, 4]
    };
    let rows = bench::fig13_graph_engines(sizes, device).expect("fig13 runs");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "graph", "MonetDB (ms)", "YDB (ms)", "MAGiQ (ms)", "TCUDB (ms)"
    );
    for r in rows {
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            r.label,
            r.monet * 1e3,
            r.ydb * 1e3,
            r.magiq * 1e3,
            r.tcudb * 1e3
        );
    }
    println!();
}

fn fig14(full: bool) {
    header("Figure 14: RTX 3090 over RTX 2080 speedup (microbenchmarks)");
    let records: &[usize] = if full {
        &[4096, 8192, 16384, 32768]
    } else {
        &[4096, 8192]
    };
    let rows = bench::fig14_gpu_scaling(records, 32).expect("fig14 runs");
    println!(
        "{:<12} {:<6} {:>14} {:>14}",
        "config", "query", "YDB speedup", "TCUDB speedup"
    );
    for r in &rows {
        println!(
            "{:<12} {:<6} {:>13.2}x {:>13.2}x",
            r.label, r.query, r.ydb_speedup, r.tcudb_speedup
        );
    }
    let avg_ydb: f64 = rows.iter().map(|r| r.ydb_speedup).sum::<f64>() / rows.len() as f64;
    let avg_tcu: f64 = rows.iter().map(|r| r.tcudb_speedup).sum::<f64>() / rows.len() as f64;
    println!("average: YDB {avg_ydb:.2}x, TCUDB {avg_tcu:.2}x");
    println!();
}
