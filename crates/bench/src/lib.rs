#![forbid(unsafe_code)]
//! # tcudb-bench
//!
//! Experiment runners that regenerate every table and figure of the
//! paper's evaluation (§5).  Each `figN_*` / `tableN_*` function returns
//! structured rows; the `figures` binary renders them as text tables and
//! the Criterion benches under `benches/` wrap the same runners.
//!
//! All timings are **simulated device seconds** produced by the cost model
//! of `tcudb-device` driven by the exact operation counts of each engine's
//! physical operators (see DESIGN.md §2).  Dataset sizes default to the
//! "mini" scales described in EXPERIMENTS.md so a full sweep finishes in
//! seconds; pass `--full` to the `figures` binary for paper-scale sweeps.

use tcudb_core::{EngineConfig, TcuDb};
use tcudb_datagen::{em, graph, matmul, micro, ssb};
use tcudb_device::{CostModel, DeviceProfile, Phase};
use tcudb_magiq::{Graph as MagiqGraph, MagiqEngine};
use tcudb_monet::MonetEngine;
use tcudb_storage::Catalog;
use tcudb_tensor::GemmStats;
use tcudb_types::{Precision, TcuResult};
use tcudb_ydb::{YdbConfig, YdbEngine};

/// Simulated timings of the three relational engines on one query.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Label of the configuration (e.g. "4096,32" or "Q1.1").
    pub label: String,
    /// TCUDB total simulated seconds.
    pub tcudb: f64,
    /// YDB (GPU hash join) total simulated seconds.
    pub ydb: f64,
    /// MonetDB-style CPU engine total modelled seconds.
    pub monet: f64,
    /// TCUDB per-phase breakdown.
    pub tcudb_breakdown: Vec<(Phase, f64)>,
    /// YDB per-phase breakdown.
    pub ydb_breakdown: Vec<(Phase, f64)>,
}

impl Comparison {
    /// Speedup of TCUDB over YDB.
    pub fn speedup_vs_ydb(&self) -> f64 {
        if self.tcudb > 0.0 {
            self.ydb / self.tcudb
        } else {
            f64::INFINITY
        }
    }

    /// Speedup of TCUDB over the CPU engine.
    pub fn speedup_vs_monet(&self) -> f64 {
        if self.tcudb > 0.0 {
            self.monet / self.tcudb
        } else {
            f64::INFINITY
        }
    }
}

/// Run one query on TCUDB, YDB and the CPU engine over a shared catalog.
///
/// `count_only` skips host-side result materialisation (the simulated
/// device timings are unaffected); comparison experiments use it for the
/// configurations whose join outputs run into the tens of millions of rows.
pub fn compare_engines(
    catalog: &Catalog,
    label: &str,
    sql: &str,
    device: &DeviceProfile,
    count_only: bool,
) -> TcuResult<Comparison> {
    let mut config = EngineConfig::for_device(device.clone());
    config.count_only = count_only;
    let tcudb = TcuDb::new(config);
    tcudb.set_catalog(catalog.clone());

    let ydb = YdbEngine::new(YdbConfig {
        device: device.clone(),
        count_only,
    });
    ydb.set_catalog(catalog.clone());

    let mut monet = MonetEngine::new();
    monet.count_only = count_only;
    monet.set_catalog(catalog.clone());

    let t = tcudb.execute(sql)?;
    let y = ydb.execute(sql)?;
    let m = monet.execute(sql)?;

    Ok(Comparison {
        label: label.to_string(),
        tcudb: t.timeline.total_seconds(),
        ydb: y.timeline.total_seconds(),
        monet: m.timeline.total_seconds(),
        tcudb_breakdown: t.timeline.breakdown(),
        ydb_breakdown: y.timeline.breakdown(),
    })
}

// ----------------------------------------------------------------------
// Figure 3: GEMM on CUDA cores vs TCUs
// ----------------------------------------------------------------------

/// One row of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Square matrix dimension.
    pub dim: usize,
    /// Simulated CUDA-core GEMM seconds.
    pub cuda_seconds: f64,
    /// Simulated tensor-core GEMM seconds.
    pub tcu_seconds: f64,
}

/// Figure 3: relative latency of square GEMMs on CUDA cores vs TCUs.
pub fn fig3_gemm(dims: &[usize], device: &DeviceProfile) -> Vec<Fig3Row> {
    let cost = CostModel::new(device.clone());
    dims.iter()
        .map(|&dim| {
            let stats = GemmStats {
                m: dim,
                n: dim,
                k: dim,
                flops: 2.0 * (dim as f64).powi(3),
                bytes_touched: 2.0 * (dim * dim) as f64 * 2.0 + (dim * dim) as f64 * 4.0,
                precision: Precision::Half,
            };
            Fig3Row {
                dim,
                cuda_seconds: cost.cuda_gemm_seconds(&stats),
                tcu_seconds: cost.tcu_gemm_seconds(&stats),
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Figures 7 and 8: microbenchmarks
// ----------------------------------------------------------------------

/// Figure 7: Q1/Q3/Q4 with a varying number of records and 32 distinct
/// join-key values.  Returns `(query name, comparisons per record count)`.
pub fn fig7_micro_records(
    record_counts: &[usize],
    distinct: usize,
    device: &DeviceProfile,
) -> TcuResult<Vec<(String, Vec<Comparison>)>> {
    let mut out = Vec::new();
    for (qname, sql) in micro::queries() {
        let mut rows = Vec::new();
        for &records in record_counts {
            let catalog = micro::gen_catalog(&micro::MicroConfig::new(records, distinct));
            let label = format!("{records},{distinct}");
            rows.push(compare_engines(&catalog, &label, sql, device, true)?);
        }
        out.push((qname.to_string(), rows));
    }
    Ok(out)
}

/// Figure 8: Q1/Q3/Q4 with 4096 records and a varying number of distinct
/// join-key values.
pub fn fig8_micro_distinct(
    records: usize,
    distinct_counts: &[usize],
    device: &DeviceProfile,
) -> TcuResult<Vec<(String, Vec<Comparison>)>> {
    let mut out = Vec::new();
    for (qname, sql) in micro::queries() {
        let mut rows = Vec::new();
        for &distinct in distinct_counts {
            let catalog = micro::gen_catalog(&micro::MicroConfig::new(records, distinct));
            let label = format!("{records},{distinct}");
            rows.push(compare_engines(&catalog, &label, sql, device, true)?);
        }
        out.push((qname.to_string(), rows));
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Figure 9: Star Schema Benchmark
// ----------------------------------------------------------------------

/// Figure 9: SSB queries at the given scale factors.  When `all_queries`
/// is false only the four flight representatives (Q1.1/Q2.1/Q3.1/Q4.1)
/// plotted in the paper's figure are run.
pub fn fig9_ssb(
    scale_factors: &[usize],
    all_queries: bool,
    device: &DeviceProfile,
) -> TcuResult<Vec<(usize, Vec<Comparison>)>> {
    let queries = if all_queries {
        ssb::queries()
    } else {
        ssb::figure9_queries()
    };
    let mut out = Vec::new();
    for &sf in scale_factors {
        let catalog = ssb::gen_catalog(sf, 0x55B + sf as u64);
        let mut rows = Vec::new();
        for (name, sql) in &queries {
            rows.push(compare_engines(&catalog, name, sql, device, true)?);
        }
        out.push((sf, rows));
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Figure 10 and Table 1: matrix-multiplication queries
// ----------------------------------------------------------------------

/// Figure 10 (executed): matrix-multiplication query on TCUDB vs YDB at
/// mini dimensions (see EXPERIMENTS.md for the scale mapping).
pub fn fig10_matmul(dims: &[usize], device: &DeviceProfile) -> TcuResult<Vec<Comparison>> {
    let mut out = Vec::new();
    for &dim in dims {
        let catalog = matmul::gen_catalog(dim, 1.0, matmul::ValueRange::Int7, 17);
        let label = format!("{dim}x{dim}x{dim}");
        out.push(compare_engines(
            &catalog,
            &label,
            matmul::MATMUL_QUERY,
            device,
            true,
        )?);
    }
    Ok(out)
}

/// One row of the analytic (paper-scale) Figure 10 projection.
#[derive(Debug, Clone)]
pub struct Fig10Projection {
    /// Matrix dimension.
    pub dim: usize,
    /// Chosen TCU plan kind at this scale.
    pub plan: String,
    /// Estimated TCUDB seconds.
    pub tcudb_seconds: f64,
    /// Estimated YDB seconds.
    pub ydb_seconds: f64,
}

/// Figure 10 (projected): cost-model estimates at the paper's 4096²–32768²
/// scales, showing the switch to the blocked MSplitGEMM plan at the largest
/// size.
pub fn fig10_projection(dims: &[usize], device: &DeviceProfile) -> Vec<Fig10Projection> {
    use tcudb_core::optimizer::{JoinShape, Optimizer};
    let optimizer = Optimizer::new(device.clone());
    dims.iter()
        .map(|&dim| {
            let table_rows = dim.saturating_mul(dim);
            let shape = JoinShape {
                m: dim,
                n: dim,
                k: dim,
                density: 1.0,
                left_abs_max: 127.0,
                right_abs_max: 127.0,
                left_table_rows: table_rows,
                right_table_rows: table_rows,
                estimated_output: table_rows.saturating_mul(dim),
                raw_bytes: table_rows.saturating_mul(24),
                fused_aggregate: true,
                groups: table_rows,
            };
            let choice = optimizer.choose_join_plan(&shape);
            Fig10Projection {
                dim,
                plan: choice.kind.to_string(),
                tcudb_seconds: choice.estimated_tcu_seconds,
                ydb_seconds: choice.estimated_gpu_seconds,
            }
        })
        .collect()
}

/// One row of Table 1: MAPE of the matrix-multiplication query per value
/// range and matrix dimension.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Value-range label.
    pub range: &'static str,
    /// `(dimension, MAPE %)` pairs.
    pub mape_by_dim: Vec<(usize, f64)>,
}

/// Table 1: mean absolute percentage error of fp16-input matrix
/// multiplication vs. an exact f64 reference.
///
/// Operands whose magnitude exceeds the binary16 range are pre-scaled by a
/// power of two (and the product rescaled afterwards), which is how the
/// code generator feeds wide integer columns to the fp16 WMMA fragments;
/// the residual error is the fp16 mantissa rounding the paper's Table 1
/// reports.
pub fn table1_mape(dims: &[usize], seed: u64) -> Vec<Table1Row> {
    use tcudb_datagen::Xorshift;
    use tcudb_tensor::{gemm, DenseMatrix};
    let mut out = Vec::new();
    for range in matmul::ValueRange::all() {
        let mut row = Vec::new();
        for &dim in dims {
            let mut rng = Xorshift::new(seed ^ dim as u64);
            let mut a = DenseMatrix::zeros(dim, dim);
            let mut b = DenseMatrix::zeros(dim, dim);
            for i in 0..dim {
                for j in 0..dim {
                    a.set(i, j, range.sample(&mut rng) as f32);
                    b.set(i, j, range.sample(&mut rng) as f32);
                }
            }
            // Power-of-two pre-scaling so the operands stay within the
            // exactly-representable fp16 integer range.
            let mut scale = 1.0f32;
            while range.magnitude() as f32 * scale > 2048.0 {
                scale *= 0.5;
            }
            let exact = gemm::gemm_exact_f64(&a, &b).expect("shapes match");
            let (a, b) = if scale < 1.0 {
                let mut sa = a.clone();
                let mut sb = b.clone();
                sa.data_mut().iter_mut().for_each(|v| *v *= scale);
                sb.data_mut().iter_mut().for_each(|v| *v *= scale);
                (sa, sb)
            } else {
                (a, b)
            };
            let (mut approx, _) =
                gemm::gemm(&a, &b, tcudb_tensor::GemmPrecision::Half).expect("shapes match");
            if scale < 1.0 {
                let rescale = 1.0 / (scale * scale);
                approx.data_mut().iter_mut().for_each(|v| *v *= rescale);
            }
            row.push((dim, gemm::mape(&approx, &exact)));
        }
        out.push(Table1Row {
            range: range.label(),
            mape_by_dim: row,
        });
    }
    out
}

// ----------------------------------------------------------------------
// Figure 11 and Tables 2–3: entity matching
// ----------------------------------------------------------------------

/// Figure 11: EM blocking queries per attribute of a dataset.
pub fn fig11_entity_matching(
    dataset: &em::EmDataset,
    device: &DeviceProfile,
) -> TcuResult<Vec<Comparison>> {
    let catalog = em::gen_catalog(dataset, 23);
    let mut out = Vec::new();
    for (attr, _) in &dataset.attributes {
        let sql = em::blocking_query(attr);
        out.push(compare_engines(&catalog, attr, &sql, device, true)?);
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Figures 12, 13 and Table 4: PageRank / graph engines
// ----------------------------------------------------------------------

/// Figure 12: the three PageRank queries on graphs of increasing size,
/// compared between TCUDB and YDB (and the CPU engine).
pub fn fig12_pagerank(
    graph_sizes: &[usize],
    device: &DeviceProfile,
) -> TcuResult<Vec<(String, Vec<Comparison>)>> {
    let mut per_query: Vec<(String, Vec<Comparison>)> = vec![
        ("PR Q1".to_string(), Vec::new()),
        ("PR Q2".to_string(), Vec::new()),
        ("PR Q3".to_string(), Vec::new()),
    ];
    for &idx in graph_sizes {
        let g = graph::gen_table4_graph(idx, 31);
        let mut catalog = graph::gen_catalog(&g);
        let ranks = vec![1.0 / g.nodes as f64; g.nodes];
        graph::register_pagerank_state(&mut catalog, &g, &ranks);
        let label = format!("{}K", g.nodes / 1024);
        let queries = [
            graph::PR_Q1.to_string(),
            graph::pr_q2(g.nodes),
            graph::pr_q3(g.nodes),
        ];
        for (qi, sql) in queries.iter().enumerate() {
            per_query[qi]
                .1
                .push(compare_engines(&catalog, &label, sql, device, true)?);
        }
    }
    Ok(per_query)
}

/// One row of Figure 13: core join+aggregation latency of PR Q3 per engine.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Graph label ("1K" … "32K").
    pub label: String,
    /// MonetDB-style CPU engine seconds.
    pub monet: f64,
    /// YDB seconds.
    pub ydb: f64,
    /// MAGiQ (GraphBLAS on CUDA cores) seconds.
    pub magiq: f64,
    /// TCUDB seconds.
    pub tcudb: f64,
}

/// Figure 13: PR Q3 core join+aggregation on MonetDB, YDB, MAGiQ and TCUDB.
pub fn fig13_graph_engines(
    graph_sizes: &[usize],
    device: &DeviceProfile,
) -> TcuResult<Vec<Fig13Row>> {
    let magiq = MagiqEngine::new(device.clone());
    let mut out = Vec::new();
    for &idx in graph_sizes {
        let g = graph::gen_table4_graph(idx, 31);
        let mut catalog = graph::gen_catalog(&g);
        let ranks = vec![1.0 / g.nodes as f64; g.nodes];
        graph::register_pagerank_state(&mut catalog, &g, &ranks);
        let sql = graph::pr_q3(g.nodes);
        // The paper reports only the latency of the *core join and
        // aggregation* operation for this figure (it excludes MAGiQ's
        // sparse-matrix retrieval overhead and the engines' data-movement
        // phases), so sum just the join/aggregation phases of each engine.
        let cmp = compare_engines(&catalog, "prq3", &sql, device, true)?;
        let core_of = |breakdown: &[(Phase, f64)], phases: &[Phase]| -> f64 {
            breakdown
                .iter()
                .filter(|(p, _)| phases.contains(p))
                .map(|(_, s)| *s)
                .sum()
        };
        let tcudb_core = core_of(
            &cmp.tcudb_breakdown,
            &[
                Phase::TcuKernel,
                Phase::HashJoin,
                Phase::GroupByAggregation,
                Phase::ResultMaterialize,
            ],
        );
        let ydb_core = core_of(
            &cmp.ydb_breakdown,
            &[Phase::HashJoin, Phase::GroupByAggregation],
        );
        let magiq_graph = MagiqGraph::from_edges(g.nodes, &g.edges)?;
        out.push(Fig13Row {
            label: format!("{}K", g.nodes / 1024),
            monet: cmp.monet,
            ydb: ydb_core,
            magiq: magiq.core_join_agg_seconds(&magiq_graph),
            tcudb: tcudb_core,
        });
    }
    Ok(out)
}

/// Table 4: node and edge counts of the reduced road-network graphs.
pub fn table4_graphs() -> Vec<(usize, usize)> {
    graph::TABLE4_SIZES.to_vec()
}

// ----------------------------------------------------------------------
// Figure 14: RTX 3090 vs RTX 2080 scaling
// ----------------------------------------------------------------------

/// One row of Figure 14: generation-over-generation speedups per query.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Configuration label ("4096,32" …).
    pub label: String,
    /// Query name (Q1 / Q3 / Q4).
    pub query: String,
    /// RTX 2080 time / RTX 3090 time for YDB.
    pub ydb_speedup: f64,
    /// RTX 2080 time / RTX 3090 time for TCUDB.
    pub tcudb_speedup: f64,
}

/// Figure 14: speedup of moving from an RTX 2080 to an RTX 3090 for YDB
/// and TCUDB on the microbenchmark queries.
pub fn fig14_gpu_scaling(record_counts: &[usize], distinct: usize) -> TcuResult<Vec<Fig14Row>> {
    let d3090 = DeviceProfile::rtx_3090();
    let d2080 = DeviceProfile::rtx_2080();
    let mut out = Vec::new();
    for (qname, sql) in micro::queries() {
        for &records in record_counts {
            let catalog = micro::gen_catalog(&micro::MicroConfig::new(records, distinct));
            let label = format!("{records},{distinct}");
            let new = compare_engines(&catalog, &label, sql, &d3090, true)?;
            let old = compare_engines(&catalog, &label, sql, &d2080, true)?;
            out.push(Fig14Row {
                label,
                query: qname.to_string(),
                ydb_speedup: old.ydb / new.ydb,
                tcudb_speedup: old.tcudb / new.tcudb,
            });
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Tables 2 and 3
// ----------------------------------------------------------------------

/// Tables 2 and 3: the EM datasets' attribute cardinalities as generated.
pub fn table23_em_stats() -> Vec<(String, Vec<(String, usize)>)> {
    let mut out = Vec::new();
    for dataset in [
        em::beer_advo_ratebeer(),
        em::itunes_amazon(),
        em::itunes_amazon_scaled(),
    ] {
        let catalog = em::gen_catalog(&dataset, 23);
        let stats = catalog.stats("TABLE_A").expect("TABLE_A registered");
        let attrs = dataset
            .attributes
            .iter()
            .map(|(a, _)| {
                (
                    a.to_string(),
                    stats.column(a).map(|c| c.distinct_count).unwrap_or(0),
                )
            })
            .collect();
        out.push((dataset.name.to_string(), attrs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceProfile {
        DeviceProfile::rtx_3090()
    }

    #[test]
    fn fig3_tcu_wins_on_large_gemms() {
        let rows = fig3_gemm(&[1024, 4096, 8192], &device());
        assert_eq!(rows.len(), 3);
        let last = rows.last().unwrap();
        assert!(last.cuda_seconds / last.tcu_seconds > 2.0);
        // Latency grows with dimension.
        assert!(rows[2].tcu_seconds > rows[0].tcu_seconds);
    }

    #[test]
    fn fig7_shape_tcudb_beats_ydb_and_monet_is_slowest() {
        let results = fig7_micro_records(&[512, 1024], 16, &device()).unwrap();
        assert_eq!(results.len(), 3);
        for (query, rows) in &results {
            for cmp in rows {
                assert!(
                    cmp.speedup_vs_ydb() > 1.0,
                    "{query} {}: TCUDB {} vs YDB {}",
                    cmp.label,
                    cmp.tcudb,
                    cmp.ydb
                );
                assert!(
                    cmp.monet > cmp.ydb,
                    "{query} {}: CPU should be slowest",
                    cmp.label
                );
            }
        }
    }

    #[test]
    fn fig8_advantage_shrinks_with_distinct_count() {
        let results = fig8_micro_distinct(1024, &[16, 256], &device()).unwrap();
        let (_, q1_rows) = &results[0];
        assert!(q1_rows[0].speedup_vs_ydb() > q1_rows[1].speedup_vs_ydb());
    }

    #[test]
    fn fig10_projection_switches_to_blocked_at_largest_scale() {
        let proj = fig10_projection(&[4096, 16384, 65536], &device());
        assert!(proj[0].plan.contains("dense") || proj[0].plan.contains("GEMM"));
        assert!(proj.last().unwrap().plan.contains("blocked"));
        for p in &proj {
            assert!(p.tcudb_seconds < p.ydb_seconds, "dim {}", p.dim);
        }
    }

    #[test]
    fn table1_mape_grows_with_value_range_and_binary_is_exact() {
        let rows = table1_mape(&[32, 64], 3);
        assert_eq!(rows.len(), 4);
        let binary = &rows[0];
        for (_, mape) in &binary.mape_by_dim {
            assert_eq!(*mape, 0.0);
        }
        let int31 = rows.last().unwrap();
        assert!(int31.mape_by_dim.iter().all(|(_, m)| *m < 1.0));
        assert!(int31.mape_by_dim.iter().any(|(_, m)| *m > 0.0));
    }

    #[test]
    fn table4_matches_paper_counts() {
        let t = table4_graphs();
        assert_eq!(t[0], (1_024, 2_058));
        assert_eq!(t[6], (32_768, 82_070));
    }

    #[test]
    fn table23_reports_attribute_cardinalities() {
        let t = table23_em_stats();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].1.len(), 4);
        assert!(t[0].1[0].1 <= 20);
    }
}
