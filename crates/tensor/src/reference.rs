//! Naive scalar reference kernels — the correctness oracle.
//!
//! These are the original triple-loop kernels the tiled engine
//! ([`crate::engine`]) replaced on the hot path.  They are kept verbatim
//! (modulo the integer-accumulator fix below) so that every optimised
//! kernel can be proven bit-identical against them, and so the perf
//! harness (`perfbaseline` in `tcudb-bench`) has a stable baseline to
//! measure speedups against.
//!
//! Numeric contracts (shared with the engine):
//!
//! * `Half`: operands rounded through IEEE binary16 once up front,
//!   products and sums accumulated in f32,
//! * `Int8` / `Int4`: operands saturating-cast, accumulated in **wide
//!   integers** (`i64`, standing in for the hardware's i32 accumulators)
//!   and converted to f32 exactly once at store time.  The original
//!   non-transposed kernel accumulated through f32 `add_to`, silently
//!   losing integer precision past 2²⁴ — fixed here for both orientations,
//!   with a regression test in [`crate::gemm`](mod@crate::gemm).
//! * `Fp32`: plain f32 accumulation in ascending k order per element.

use crate::dense::DenseMatrix;
use crate::gemm::{check_gemm_bt_shapes, check_gemm_shapes, GemmPrecision, GemmStats};
use tcudb_types::quant::{to_i4_saturating, to_i8_saturating};
use tcudb_types::{TcuResult, F16};

/// Reference `C = A × B` (`A`: m×k, `B`: k×n); same contract as
/// [`crate::gemm::gemm`].
pub fn gemm(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let out = match precision {
        GemmPrecision::Fp32 => gemm_f32(a, b),
        GemmPrecision::Half => gemm_half(a, b),
        GemmPrecision::Int8 => gemm_int(a, b, |v| to_i8_saturating(v as f64) as i64),
        GemmPrecision::Int4 => gemm_int(a, b, |v| to_i4_saturating(v as f64) as i64),
    };
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

/// Reference `C = A × Bᵀ` (`A`: m×k, `B`: n×k); same contract as
/// [`crate::gemm::gemm_bt`].
pub fn gemm_bt(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_bt_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let out = match precision {
        GemmPrecision::Fp32 => gemm_bt_f32(a, b),
        GemmPrecision::Half => gemm_bt_half(a, b),
        GemmPrecision::Int8 => gemm_bt_int(a, b, |v| to_i8_saturating(v as f64) as i64),
        GemmPrecision::Int4 => gemm_bt_int(a, b, |v| to_i4_saturating(v as f64) as i64),
    };
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

fn gemm_f32(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (j, &bv) in brow.iter().enumerate().take(n) {
                c.add_to(i, j, av * bv);
            }
        }
    }
    c
}

fn gemm_bt_f32(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            c.set(i, j, acc);
        }
    }
    c
}

fn gemm_half(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // Round operands through binary16 once up front (the data-transformation
    // step casts entire fragments, not individual scalars).
    let ar: Vec<f32> = a.data().iter().map(|&v| F16::round_trip(v)).collect();
    let br: Vec<f32> = b.data().iter().map(|&v| F16::round_trip(v)).collect();
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = ar[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                c.add_to(i, j, av * br[p * n + j]);
            }
        }
    }
    c
}

fn gemm_bt_half(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let ar: Vec<f32> = a.data().iter().map(|&v| F16::round_trip(v)).collect();
    let br: Vec<f32> = b.data().iter().map(|&v| F16::round_trip(v)).collect();
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += ar[i * k + p] * br[j * k + p];
            }
            c.set(i, j, acc);
        }
    }
    c
}

fn gemm_int(a: &DenseMatrix, b: &DenseMatrix, cast: impl Fn(f32) -> i64) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let ai: Vec<i64> = a.data().iter().map(|&v| cast(v)).collect();
    let bi: Vec<i64> = b.data().iter().map(|&v| cast(v)).collect();
    // Wide integer accumulation, converted to f32 once at store time (the
    // original version accumulated through f32 `add_to`, which silently
    // rounded sums past the 2²⁴ f32 mantissa).
    let mut acc = vec![0i64; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = ai[i * k + p];
            if av == 0 {
                continue;
            }
            let accrow = &mut acc[i * n..(i + 1) * n];
            for (j, accv) in accrow.iter_mut().enumerate() {
                *accv += av * bi[p * n + j];
            }
        }
    }
    DenseMatrix::from_vec(m, n, acc.iter().map(|&v| v as f32).collect())
        .expect("accumulator buffer matches m×n")
}

fn gemm_bt_int(a: &DenseMatrix, b: &DenseMatrix, cast: impl Fn(f32) -> i64) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let ai: Vec<i64> = a.data().iter().map(|&v| cast(v)).collect();
    let bi: Vec<i64> = b.data().iter().map(|&v| cast(v)).collect();
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc: i64 = 0;
            for p in 0..k {
                acc += ai[i * k + p] * bi[j * k + p];
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_hand_computed() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b =
            DenseMatrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let (c, stats) = gemm(&a, &b, GemmPrecision::Fp32).unwrap();
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(1, 1), 154.0);
        assert_eq!(stats.k, 3);
        assert!(gemm(&a, &a, GemmPrecision::Fp32).is_err());
        assert!(gemm_bt(&a, &b, GemmPrecision::Fp32).is_err());
    }

    #[test]
    fn reference_bt_equals_gemm_with_transpose() {
        let a = DenseMatrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![-1.0, 4.0]]).unwrap();
        for p in [
            GemmPrecision::Fp32,
            GemmPrecision::Half,
            GemmPrecision::Int8,
            GemmPrecision::Int4,
        ] {
            let (via_bt, _) = gemm_bt(&a, &b, p).unwrap();
            let (via_t, _) = gemm(&a, &b.transpose(), p).unwrap();
            assert_eq!(via_bt, via_t, "{p:?}");
        }
    }
}
