//! Grouped reduction: the §3.3 group-by aggregation expressed as tensor
//! primitives.
//!
//! The paper computes `SELECT SUM(v) … GROUP BY g` as a matrix product:
//! the value vector (1×n) times a one-hot *group matrix* (n×G, row `i` has
//! a single 1 in column `group_ids[i]`) yields the per-group sums in one
//! GEMM — the grouped-GEMV form of Lemma 3.1.  Two entry points:
//!
//! * [`segmented_reduce`] — the scatter-accumulate reference form (one add
//!   per row into its group slot), used by the query engine when the group
//!   matrix is too large to materialise,
//! * [`grouped_sum_gemm`] — the actual one-hot GEMM routed through the
//!   tiled kernel engine, returning [`GemmStats`] so the simulated device
//!   can charge real operation counts instead of a row-count guess.
//!
//! Both produce identical results whenever every partial sum is exactly
//! representable at the kernel precision (the f32 feasibility test the
//! query engine applies before selecting the GEMM form — integer values
//! with Σ|v| < 2²⁴, which covers every one-hot/count encoding and the
//! dictionary-code payloads the translator emits).

use crate::dense::DenseMatrix;
use crate::gemm::{self, GemmPrecision, GemmStats};
use tcudb_types::{TcuError, TcuResult};

/// Scatter-accumulate per-group sums: `out[g] = Σ values[i]` over rows
/// with `group_ids[i] == g`.  Rows are folded in ascending index order,
/// one unfused add each — the accumulation order of the row-at-a-time
/// reference aggregation.
pub fn segmented_reduce(values: &[f32], group_ids: &[u32], groups: usize) -> Vec<f32> {
    debug_assert_eq!(values.len(), group_ids.len());
    let mut out = vec![0.0f32; groups];
    for (&v, &g) in values.iter().zip(group_ids) {
        out[g as usize] += v;
    }
    out
}

/// Build the n×G one-hot group matrix: row `i` is the indicator of
/// `group_ids[i]`.
pub fn one_hot_groups(group_ids: &[u32], groups: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(group_ids.len(), groups);
    for (i, &g) in group_ids.iter().enumerate() {
        m.row_mut(i)[g as usize] = 1.0;
    }
    m
}

/// Per-group sums as an actual one-hot GEMM on the tiled engine:
/// `sums(1×G) = values(1×n) × onehot(n×G)` — §3.3's fused aggregation with
/// the join already resolved into `group_ids`.
///
/// Returns the per-group sums plus the [`GemmStats`] of the kernel run
/// (`m=1, n=G, k=n`), which the engine layer feeds to the cost model.
pub fn grouped_sum_gemm(
    values: &[f32],
    group_ids: &[u32],
    groups: usize,
    precision: GemmPrecision,
) -> TcuResult<(Vec<f32>, GemmStats)> {
    if values.len() != group_ids.len() {
        return Err(TcuError::InvalidArgument(format!(
            "grouped_sum_gemm: {} values but {} group ids",
            values.len(),
            group_ids.len()
        )));
    }
    if let Some(&g) = group_ids.iter().find(|&&g| g as usize >= groups) {
        return Err(TcuError::InvalidArgument(format!(
            "grouped_sum_gemm: group id {g} out of range (groups={groups})"
        )));
    }
    let a = DenseMatrix::from_vec(1, values.len(), values.to_vec())
        .expect("1×n value vector matches values length");
    let b = one_hot_groups(group_ids, groups);
    let (c, stats) = gemm::gemm(&a, &b, precision)?;
    Ok((c.row(0).to_vec(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmented_and_gemm_agree_on_exact_inputs() {
        // Integer values small enough that every f32 partial sum is exact:
        // the two forms must agree bit for bit.
        let values: Vec<f32> = (0..257).map(|i| ((i * 7) % 23) as f32 - 11.0).collect();
        let group_ids: Vec<u32> = (0..257).map(|i| ((i * 13) % 9) as u32).collect();
        let seg = segmented_reduce(&values, &group_ids, 9);
        let (via_gemm, stats) =
            grouped_sum_gemm(&values, &group_ids, 9, GemmPrecision::Fp32).expect("gemm path runs");
        assert_eq!(seg, via_gemm);
        assert_eq!((stats.m, stats.n, stats.k), (1, 9, 257));
        assert!(stats.flops > 0.0);
    }

    #[test]
    fn one_hot_rows_are_indicators() {
        let m = one_hot_groups(&[2, 0, 2], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(2), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn empty_input_yields_zero_groups() {
        assert_eq!(segmented_reduce(&[], &[], 4), vec![0.0; 4]);
        let (sums, _) = grouped_sum_gemm(&[], &[], 4, GemmPrecision::Fp32).unwrap();
        assert_eq!(sums, vec![0.0; 4]);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        assert!(grouped_sum_gemm(&[1.0], &[], 1, GemmPrecision::Fp32).is_err());
        assert!(grouped_sum_gemm(&[1.0], &[5], 2, GemmPrecision::Fp32).is_err());
    }
}
