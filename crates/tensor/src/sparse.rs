//! Compressed Sparse Row matrices.
//!
//! The TCU-SpMM operator of §4.2.4 first converts its operands to CSR
//! before tiling them; the MAGiQ baseline stores its graphs directly in
//! CSR.  This module provides the CSR type plus conversions and the basic
//! SpMV / SpMM reference kernels.

use crate::dense::DenseMatrix;
use tcudb_types::{TcuError, TcuResult};

/// A sparse matrix in Compressed Sparse Row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes the entries of row `i`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    col_idx: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build a CSR matrix from (row, col, value) triplets.  Duplicate
    /// coordinates are summed (the behaviour of cuSPARSE's COO→CSR path).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> TcuResult<CsrMatrix> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(TcuError::InvalidArgument(format!(
                    "triplet ({r},{c}) outside {rows}x{cols} matrix"
                )));
            }
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut current_row = 0usize;
        let mut last_coord: Option<(usize, usize)> = None;
        for (r, c, v) in sorted {
            if last_coord == Some((r, c)) {
                // Duplicate coordinate → accumulate into the last entry.
                *values
                    .last_mut()
                    .expect("duplicate implies an entry exists") += v;
                continue;
            }
            while current_row < r {
                current_row += 1;
                row_ptr[current_row] = col_idx.len();
            }
            col_idx.push(c);
            values.push(v);
            last_coord = Some((r, c));
        }
        while current_row < rows {
            current_row += 1;
            row_ptr[current_row] = col_idx.len();
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Convert a dense matrix to CSR, keeping only non-zero entries.
    pub fn from_dense(dense: &DenseMatrix) -> CsrMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            let r = dense.row(i);
            for (j, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert back to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                out.set(i, self.col_idx[e], self.values[e]);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density: nnz / (rows × cols).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate over the entries of one row as `(col, value)` pairs.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (start..end).map(move |e| (self.col_idx[e], self.values[e]))
    }

    /// Iterate over the entries of `row` whose column lies in `[lo, hi)`,
    /// located by binary search on the (sorted) column indices — the
    /// fragment-gather primitive of TCU-SpMM, `O(log nnz_row + hits)`
    /// instead of a full row scan per tile.
    pub fn row_entries_in(
        &self,
        row: usize,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        let cols = &self.col_idx[start..end];
        let s = start + cols.partition_point(|&c| c < lo);
        let e = start + cols.partition_point(|&c| c < hi);
        (s..e).map(move |i| (self.col_idx[i], self.values[i]))
    }

    /// Approximate memory footprint in bytes (CSR arrays, 4-byte values and
    /// indices, matching the device representation used for cost).
    pub fn byte_size(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_idx.len() * 4 + self.values.len() * 4
    }

    /// Sparse matrix × dense vector.
    pub fn spmv(&self, x: &[f32]) -> TcuResult<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TcuError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("length {}", x.len()),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[e] * x[self.col_idx[e]];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Sparse × sparse matrix multiplication (row-by-row Gustavson),
    /// returning a CSR result.  This is the CUDA-core sparse reference the
    /// paper's YDB / MAGiQ baselines effectively execute.
    pub fn spgemm(&self, other: &CsrMatrix) -> TcuResult<CsrMatrix> {
        if self.cols != other.rows {
            return Err(TcuError::ShapeMismatch {
                expected: format!("A.cols == B.rows (A is {}x{})", self.rows, self.cols),
                got: format!("B is {}x{}", other.rows, other.cols),
            });
        }
        let mut triplets = Vec::new();
        let mut acc: Vec<f32> = vec![0.0; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for (ka, va) in self.row_entries(i) {
                for (j, vb) in other.row_entries(ka) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += va * vb;
                }
            }
            for &j in &touched {
                if acc[j] != 0.0 {
                    triplets.push((i, j, acc[j]));
                }
                acc[j] = 0.0;
            }
            touched.clear();
        }
        CsrMatrix::from_triplets(self.rows, other.cols, &triplets)
    }

    /// Transposed copy (CSR of the transpose).
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                triplets.push((j, i, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose coordinates are always in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_dense() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn dense_round_trip() {
        let d = sample_dense();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), d);
        assert!((csr.density() - 3.0 / 9.0).abs() < 1e-12);
        assert!(csr.byte_size() > 0);
    }

    #[test]
    fn triplets_constructor_and_bounds() {
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 1, 5.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(csr.to_dense().get(0, 1), 5.0);
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).unwrap();
        assert_eq!(csr.to_dense().get(0, 0), 3.0);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn spmv_matches_dense() {
        let d = sample_dense();
        let csr = CsrMatrix::from_dense(&d);
        let y = csr.spmv(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 6.0]);
        assert!(csr.spmv(&[1.0]).is_err());
    }

    #[test]
    fn spgemm_matches_dense_gemm() {
        let a = sample_dense();
        let b = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let csr_a = CsrMatrix::from_dense(&a);
        let csr_b = CsrMatrix::from_dense(&b);
        let c = csr_a.spgemm(&csr_b).unwrap();
        let (dense_c, _) = crate::gemm::gemm(&a, &b, crate::gemm::GemmPrecision::Fp32).unwrap();
        assert_eq!(c.to_dense(), dense_c);
        // b is 3x2, so B×B has incompatible shapes.
        assert!(csr_b.spgemm(&csr_b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let t = csr.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.to_dense().get(2, 0), 2.0);
        assert_eq!(t.transpose().to_dense(), sample_dense());
    }

    #[test]
    fn row_entries_iteration() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let row0: Vec<(usize, f32)> = csr.row_entries(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        let row1: Vec<(usize, f32)> = csr.row_entries(1).collect();
        assert!(row1.is_empty());
    }

    #[test]
    fn row_entries_in_restricts_to_column_range() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let hits: Vec<(usize, f32)> = csr.row_entries_in(0, 1, 3).collect();
        assert_eq!(hits, vec![(2, 2.0)]);
        let all: Vec<(usize, f32)> = csr.row_entries_in(0, 0, 3).collect();
        assert_eq!(all, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(csr.row_entries_in(1, 0, 3).count(), 0);
        assert_eq!(csr.row_entries_in(0, 3, 3).count(), 0);
    }

    #[test]
    fn empty_matrix_density() {
        let csr = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(csr.density(), 0.0);
        assert_eq!(csr.nnz(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// CSR round-trips arbitrary sparse dense matrices.
        #[test]
        fn prop_dense_csr_round_trip(rows in 1usize..10, cols in 1usize..10, seed in 0u64..500) {
            let mut state = seed.wrapping_add(99);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (state >> 50) % 4 == 0 { ((state >> 33) % 9) as f32 - 4.0 } else { 0.0 }
            };
            let d = DenseMatrix::from_vec(rows, cols, (0..rows*cols).map(|_| next()).collect()).unwrap();
            let csr = CsrMatrix::from_dense(&d);
            prop_assert_eq!(csr.to_dense(), d);
        }

        /// SpGEMM agrees with dense GEMM on random sparse inputs.
        #[test]
        fn prop_spgemm_matches_dense(m in 1usize..7, k in 1usize..7, n in 1usize..7, seed in 0u64..300) {
            let mut state = seed.wrapping_add(5);
            let mut next = || {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                if (state >> 50) % 3 == 0 { ((state >> 33) % 5) as f32 } else { 0.0 }
            };
            let a = DenseMatrix::from_vec(m, k, (0..m*k).map(|_| next()).collect()).unwrap();
            let b = DenseMatrix::from_vec(k, n, (0..k*n).map(|_| next()).collect()).unwrap();
            let sp = CsrMatrix::from_dense(&a).spgemm(&CsrMatrix::from_dense(&b)).unwrap();
            let (dense, _) = crate::gemm::gemm(&a, &b, crate::gemm::GemmPrecision::Fp32).unwrap();
            prop_assert_eq!(sp.to_dense(), dense);
        }
    }
}
