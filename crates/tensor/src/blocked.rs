//! Blocked / pipelined GEMM (MSplitGEMM-style), §4.2.3.
//!
//! When the working set of a TCU operator exceeds the GPU's device memory,
//! TCUDB falls back to a blocked matrix-multiplication: sub-matrices of the
//! operands are streamed into device memory, multiplied on the tensor
//! cores, and the partial products are accumulated into the result while
//! the next blocks are being fetched (pipeline parallelism across CUDA
//! streams in the original MSplitGEMM).
//!
//! The kernel below performs the identical block decomposition and reports
//! in [`BlockedGemmStats`] how many blocks were streamed and how many bytes
//! crossed the (simulated) PCIe bus, so the cost model can charge transfer
//! and compute time per pipeline stage.

use crate::dense::DenseMatrix;
use crate::gemm::{gemm, gemm_bt, GemmPrecision};
use tcudb_types::sync::QueryContext;
use tcudb_types::{TcuError, TcuResult};

/// Statistics reported by a blocked GEMM execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockedGemmStats {
    /// Result rows.
    pub m: usize,
    /// Result columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Block edge length used for the decomposition.
    pub block_size: usize,
    /// Number of block-triple multiplications executed.
    pub block_multiplications: usize,
    /// Total multiply-accumulate FLOPs (identical to the dense product).
    pub flops: f64,
    /// Bytes streamed host→device across all block fetches (operands are
    /// re-fetched once per block multiplication, as in MSplitGEMM).
    pub bytes_streamed_in: f64,
    /// Bytes streamed device→host for result write-back.
    pub bytes_streamed_out: f64,
    /// Number of pipeline stages (block fetch / MMA / write-back) that can
    /// overlap; equal to the number of result blocks.
    pub pipeline_stages: usize,
}

/// Pick a block size so that three blocks (two operands + one result tile)
/// fit in `device_bytes` of device memory at 4 bytes per staged element.
///
/// The paper tunes this with a micro-benchmark sweep; we use the largest
/// power of two that satisfies the capacity constraint, clamped to
/// `[256, 16384]`.
pub fn choose_block_size(device_bytes: usize) -> usize {
    let per_matrix = device_bytes / 3;
    let max_elems = per_matrix / 4;
    let mut size = 256usize;
    while size * 2 <= 16384 && (size * 2) * (size * 2) <= max_elems {
        size *= 2;
    }
    size
}

/// Compute `C = A × B` by streaming `block_size`-edged sub-matrices.
///
/// Produces bit-identical results to [`gemm`] in the same precision (the
/// accumulation order differs only across k-blocks, which is exact for the
/// f32 accumulators used here on the value ranges the feasibility test
/// admits).
pub fn blocked_gemm(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    block_size: usize,
) -> TcuResult<(DenseMatrix, BlockedGemmStats)> {
    if a.cols() != b.rows() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.rows (A is {}x{})", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    blocked_loop(a, b, precision, block_size, false, None)
}

/// Compute `C = A × Bᵀ` (`A`: m×k, `B`: n×k) by streaming
/// `block_size`-edged sub-matrices — [`blocked_gemm`] in the join
/// orientation, without ever materialising the k×n transpose of `B`: each
/// block is cut from `B`'s rows and handed to the engine's `A × Bᵀ` path,
/// which performs the transpose during operand packing.
pub fn blocked_gemm_bt(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    block_size: usize,
) -> TcuResult<(DenseMatrix, BlockedGemmStats)> {
    if a.cols() != b.cols() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.cols (A is {}x{})", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    blocked_loop(a, b, precision, block_size, true, None)
}

/// [`blocked_gemm_bt`] under a [`QueryContext`]: the context is probed
/// before every block-triple multiplication (the natural streaming
/// boundary), so a cancelled or past-deadline query abandons the
/// remaining blocks with a typed error.
pub fn blocked_gemm_bt_ctx(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    block_size: usize,
    ctx: &QueryContext,
) -> TcuResult<(DenseMatrix, BlockedGemmStats)> {
    if a.cols() != b.cols() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.cols (A is {}x{})", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    blocked_loop(a, b, precision, block_size, true, Some(ctx))
}

/// The shared block-streaming loop.  `bt` selects the operand orientation:
/// false = `A × B` (B is k×n, blocks cut from B's rows along k), true =
/// `A × Bᵀ` (B is n×k, blocks cut from B's rows along n).
fn blocked_loop(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    block_size: usize,
    bt: bool,
    ctx: Option<&QueryContext>,
) -> TcuResult<(DenseMatrix, BlockedGemmStats)> {
    if block_size == 0 {
        return Err(TcuError::InvalidArgument("block_size must be > 0".into()));
    }
    let (m, k) = (a.rows(), a.cols());
    let n = if bt { b.rows() } else { b.cols() };
    let mut c = DenseMatrix::zeros(m, n);

    let blocks_m = m.div_ceil(block_size).max(1);
    let blocks_n = n.div_ceil(block_size).max(1);
    let blocks_k = k.div_ceil(block_size).max(1);

    let mut block_mults = 0usize;
    let mut bytes_in = 0.0f64;
    let mut flops = 0.0f64;

    for bi in 0..blocks_m {
        let row0 = bi * block_size;
        let rows = block_size.min(m.saturating_sub(row0));
        if rows == 0 {
            continue;
        }
        for bj in 0..blocks_n {
            let col0 = bj * block_size;
            let cols = block_size.min(n.saturating_sub(col0));
            if cols == 0 {
                continue;
            }
            for bk in 0..blocks_k {
                if let Some(ctx) = ctx {
                    ctx.check()?;
                }
                let k0 = bk * block_size;
                let ks = block_size.min(k.saturating_sub(k0));
                if ks == 0 {
                    continue;
                }
                let a_block = a.sub_matrix(row0, k0, rows, ks);
                let (partial, stats) = if bt {
                    let b_block = b.sub_matrix(col0, k0, cols, ks);
                    gemm_bt(&a_block, &b_block, precision)?
                } else {
                    let b_block = b.sub_matrix(k0, col0, ks, cols);
                    gemm(&a_block, &b_block, precision)?
                };
                c.accumulate_block(row0, col0, &partial);
                block_mults += 1;
                flops += stats.flops;
                // Each block multiplication fetches one A block and one B
                // block at the staging precision (4 bytes, matching the
                // f32 staging buffers MSplitGEMM streams).
                bytes_in += (rows * ks + ks * cols) as f64 * 4.0;
            }
        }
    }

    let stats = BlockedGemmStats {
        m,
        n,
        k,
        block_size,
        block_multiplications: block_mults,
        flops,
        bytes_streamed_in: bytes_in,
        bytes_streamed_out: (m * n) as f64 * 4.0,
        pipeline_stages: blocks_m * blocks_n,
    };
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_add(42);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 11) as f32 - 5.0
        };
        DenseMatrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    #[test]
    fn blocked_matches_plain_gemm() {
        let a = random_matrix(37, 23, 1);
        let b = random_matrix(23, 41, 2);
        let (expected, _) = gemm(&a, &b, GemmPrecision::Fp32).unwrap();
        for block in [4, 8, 16, 64] {
            let (c, stats) = blocked_gemm(&a, &b, GemmPrecision::Fp32, block).unwrap();
            assert_eq!(c, expected, "block={block}");
            assert!(stats.block_multiplications >= 1);
            assert_eq!(stats.flops, 2.0 * 37.0 * 41.0 * 23.0);
        }
    }

    #[test]
    fn block_larger_than_matrix_is_single_block() {
        let a = random_matrix(8, 8, 3);
        let b = random_matrix(8, 8, 4);
        let (_, stats) = blocked_gemm(&a, &b, GemmPrecision::Fp32, 1024).unwrap();
        assert_eq!(stats.block_multiplications, 1);
        assert_eq!(stats.pipeline_stages, 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = random_matrix(4, 4, 5);
        let b = random_matrix(5, 4, 6);
        assert!(blocked_gemm(&a, &b, GemmPrecision::Fp32, 4).is_err());
        let b2 = random_matrix(4, 4, 7);
        assert!(blocked_gemm(&a, &b2, GemmPrecision::Fp32, 0).is_err());
    }

    #[test]
    fn streamed_bytes_grow_with_smaller_blocks() {
        let a = random_matrix(32, 32, 8);
        let b = random_matrix(32, 32, 9);
        let (_, small) = blocked_gemm(&a, &b, GemmPrecision::Fp32, 8).unwrap();
        let (_, large) = blocked_gemm(&a, &b, GemmPrecision::Fp32, 32).unwrap();
        // Smaller blocks re-fetch operand data more often.
        assert!(small.bytes_streamed_in > large.bytes_streamed_in);
        assert_eq!(small.bytes_streamed_out, large.bytes_streamed_out);
    }

    #[test]
    fn choose_block_size_respects_capacity() {
        // 24 GB device memory → large blocks.
        let large = choose_block_size(24 * 1024 * 1024 * 1024);
        assert_eq!(large, 16384);
        // Tiny capacity → minimum block.
        let small = choose_block_size(1024);
        assert_eq!(small, 256);
        // Mid-size: 3 blocks of 2048² f32 ≈ 50 MB.
        let mid = choose_block_size(64 * 1024 * 1024);
        assert!((1024..=4096).contains(&mid), "mid={mid}");
    }

    #[test]
    fn blocked_bt_matches_blocked_with_transpose() {
        let a = random_matrix(19, 13, 21);
        let b = random_matrix(17, 13, 22); // n×k, the join orientation
        for block in [4, 8, 64] {
            let (via_bt, bt_stats) = blocked_gemm_bt(&a, &b, GemmPrecision::Fp32, block).unwrap();
            let (via_t, t_stats) =
                blocked_gemm(&a, &b.transpose(), GemmPrecision::Fp32, block).unwrap();
            assert_eq!(via_bt, via_t, "block={block}");
            assert_eq!(
                bt_stats.block_multiplications,
                t_stats.block_multiplications
            );
            assert_eq!(bt_stats.flops, t_stats.flops);
            assert_eq!(bt_stats.bytes_streamed_in, t_stats.bytes_streamed_in);
        }
        assert!(blocked_gemm_bt(&a, &a.transpose(), GemmPrecision::Fp32, 4).is_err());
        assert!(blocked_gemm_bt(&a, &b, GemmPrecision::Fp32, 0).is_err());
    }

    #[test]
    fn ctx_blocked_matches_and_cancels_mid_stream() {
        use tcudb_types::sync::{CancellationToken, QueryContext};
        use tcudb_types::TcuError;
        let a = random_matrix(19, 13, 21);
        let b = random_matrix(17, 13, 22);
        let ctx = QueryContext::unbounded();
        let (via_ctx, _) = blocked_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 8, &ctx).unwrap();
        let (plain, _) = blocked_gemm_bt(&a, &b, GemmPrecision::Fp32, 8).unwrap();
        assert_eq!(via_ctx, plain);

        // Cancel on the second block-triple: the stream stops there.
        let token = CancellationToken::new();
        token.cancel_at_check(2);
        let ctx = QueryContext::with_token(token);
        let err = blocked_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 8, &ctx).unwrap_err();
        assert!(matches!(err, TcuError::Cancelled(_)));
    }

    #[test]
    fn half_precision_blocked_matches_half_plain_for_small_ints() {
        let a = random_matrix(20, 12, 10);
        let b = random_matrix(12, 20, 11);
        let (expected, _) = gemm(&a, &b, GemmPrecision::Half).unwrap();
        let (c, _) = blocked_gemm(&a, &b, GemmPrecision::Half, 8).unwrap();
        assert_eq!(c, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Blocked GEMM is equivalent to plain GEMM for every block size.
        #[test]
        fn prop_blocked_equals_plain(
            m in 1usize..24, k in 1usize..24, n in 1usize..24,
            block in 1usize..32, seed in 0u64..200
        ) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 1);
            let (expected, _) = gemm(&a, &b, GemmPrecision::Fp32).unwrap();
            let (c, stats) = blocked_gemm(&a, &b, GemmPrecision::Fp32, block).unwrap();
            prop_assert_eq!(c, expected);
            prop_assert_eq!(stats.flops, 2.0 * (m * n * k) as f64);
        }
    }
}
