//! TCU-SpMM: tiled sparse matrix multiplication with zero-tile skipping.
//!
//! §4.2.4 of the paper: when operands are sparse, TCUDB
//!
//! 1. transforms the input into CSR,
//! 2. partitions the matrices into 16×16 sub-matrices (the WMMA fragment
//!    shape),
//! 3. skips sub-matrix pairs that are entirely zero,
//! 4. multiplies the surviving pairs on the tensor cores and accumulates.
//!
//! The kernel below does exactly that.  Tile occupancy is tracked in a flat
//! bitset grid ([`TileOccupancy`], one bit per tile — no per-row `Vec`
//! allocations), surviving operand tiles are gathered from CSR into packed
//! fragments via binary-searched row ranges
//! ([`CsrMatrix::row_entries_in`]), and each fragment pair is multiplied by
//! the register-tiled microkernel of [`crate::engine`] — the same engine
//! the dense GEMM entry points run on.  The returned [`SpmmStats`] records
//! how many tile pairs were processed vs. skipped — the quantity the cost
//! model multiplies by the per-tile MMA latency to obtain CT_op for sparse
//! plans (the paper scales the dense cost by the input densities).

use crate::dense::DenseMatrix;
use crate::engine;
use crate::gemm::GemmPrecision;
use crate::sparse::CsrMatrix;
use tcudb_types::sync::QueryContext;
use tcudb_types::{TcuError, TcuResult, F16};

/// Side length of a TCU tile (the m16n16k16 WMMA fragment).
pub const TILE_DIM: usize = 16;

/// Elements per packed 16×16 fragment.
const FRAG_LEN: usize = TILE_DIM * TILE_DIM;

/// Statistics reported by the TCU-SpMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpmmStats {
    /// Result rows.
    pub m: usize,
    /// Result columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Tile pairs whose product was actually computed on the TCU.
    pub tiles_processed: usize,
    /// Tile pairs skipped because at least one operand tile was all zeros.
    pub tiles_skipped: usize,
    /// Density of operand A (nnz / size).
    pub density_a: f64,
    /// Density of operand B (nnz / size).
    pub density_b: f64,
    /// Multiply-accumulate FLOPs actually executed (2 · 16³ per tile pair).
    pub flops: f64,
    /// FLOPs a dense kernel would have executed (2·M·N·K) — the saving is
    /// the ratio of the two.
    pub dense_equivalent_flops: f64,
    /// Bytes of CSR operand data read plus result written.
    pub bytes_touched: f64,
}

impl SpmmStats {
    /// Fraction of tile pairs that were skipped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.tiles_processed + self.tiles_skipped;
        if total == 0 {
            0.0
        } else {
            self.tiles_skipped as f64 / total as f64
        }
    }
}

/// Flat bitset occupancy grid: one bit per 16×16 tile, set when the tile
/// contains at least one non-zero.  Replaces the old `Vec<Vec<bool>>` map
/// (one heap allocation per tile row, one byte per tile) with a single
/// `Vec<u64>` — 1/8th the memory and no allocation churn on large sparse
/// inputs.
#[derive(Debug, Clone)]
pub struct TileOccupancy {
    tile_cols: usize,
    tiles: usize,
    bits: Vec<u64>,
}

impl TileOccupancy {
    /// An all-empty grid of `tile_rows × tile_cols` tiles.
    pub fn new(tile_rows: usize, tile_cols: usize) -> TileOccupancy {
        let tiles = tile_rows * tile_cols;
        TileOccupancy {
            tile_cols,
            tiles,
            bits: vec![0u64; tiles.div_ceil(64)],
        }
    }

    /// Mark tile `(tr, tc)` as occupied.
    #[inline]
    pub fn set(&mut self, tr: usize, tc: usize) {
        let i = tr * self.tile_cols + tc;
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    /// Is tile `(tr, tc)` occupied?  Out-of-range coordinates read as
    /// empty, mirroring the forgiving lookups of the old nested-`Vec` map.
    #[inline]
    pub fn get(&self, tr: usize, tc: usize) -> bool {
        if tc >= self.tile_cols {
            return false;
        }
        let i = tr * self.tile_cols + tc;
        if i >= self.tiles {
            return false;
        }
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of occupied tiles.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Occupancy map of a CSR matrix: which 16×16 tiles contain a non-zero.
fn tile_occupancy(csr: &CsrMatrix) -> TileOccupancy {
    let tile_rows = csr.rows().div_ceil(TILE_DIM);
    let tile_cols = csr.cols().div_ceil(TILE_DIM);
    let mut occ = TileOccupancy::new(tile_rows.max(1), tile_cols);
    for i in 0..csr.rows() {
        let tr = i / TILE_DIM;
        for (j, _) in csr.row_entries(i) {
            occ.set(tr, j / TILE_DIM);
        }
    }
    occ
}

/// The row × k window of one 16×16 fragment inside a CSR operand.
#[derive(Clone, Copy)]
struct TileWindow {
    row_lo: usize,
    row_hi: usize,
    k_lo: usize,
    k_hi: usize,
}

/// Gather the 16×16 fragment of `csr` at `window` into `frag`, applying
/// the precision cast to each stored value.  `transposed` selects the
/// layout: row-major (`frag[row][k]`, the A fragment) or k-major
/// (`frag[k][row]`, the B fragment, so the multiply's inner loop runs
/// unit-stride over B rows).
fn gather_fragment(
    csr: &CsrMatrix,
    window: TileWindow,
    transposed: bool,
    round: impl Fn(f32) -> f32,
    frag: &mut [f32; FRAG_LEN],
) {
    frag.fill(0.0);
    for (li, i) in (window.row_lo..window.row_hi).enumerate() {
        for (col, val) in csr.row_entries_in(i, window.k_lo, window.k_hi) {
            let idx = if transposed {
                (col - window.k_lo) * TILE_DIM + li
            } else {
                li * TILE_DIM + (col - window.k_lo)
            };
            frag[idx] = round(val);
        }
    }
}

/// Compute `C = A × Bᵀ` where both operands are sparse, using the tiled
/// zero-skipping strategy of TCU-SpMM.
///
/// `A` is m×k and `B` is n×k (so `Bᵀ` is k×n), the same operand
/// orientation as [`crate::gemm::gemm_bt`].  `precision` controls the
/// per-tile arithmetic (fp16 rounding emulated for `Half`; `Int8`/`Int4`
/// saturating-cast values accumulate in per-tile f32, exact while sums
/// stay below the 2²⁴ f32 integer range — unlike the dense entry points,
/// which accumulate integers in i64).
pub fn tcu_spmm(
    a: &CsrMatrix,
    b: &CsrMatrix,
    precision: GemmPrecision,
) -> TcuResult<(DenseMatrix, SpmmStats)> {
    spmm_inner(a, b, precision, None)
}

/// Cancellation-aware variant of [`tcu_spmm`]: probes `ctx` once per k-tile
/// stripe (the outermost loop), so a cancelled or past-deadline query stops
/// within one stripe's worth of work and returns the typed error.  The
/// kernel is sequential, so probe counts are deterministic for a given
/// input shape — the property the chaos harness's checkpoint sweep relies
/// on.
pub fn tcu_spmm_ctx(
    a: &CsrMatrix,
    b: &CsrMatrix,
    precision: GemmPrecision,
    ctx: &QueryContext,
) -> TcuResult<(DenseMatrix, SpmmStats)> {
    spmm_inner(a, b, precision, Some(ctx))
}

fn spmm_inner(
    a: &CsrMatrix,
    b: &CsrMatrix,
    precision: GemmPrecision,
    ctx: Option<&QueryContext>,
) -> TcuResult<(DenseMatrix, SpmmStats)> {
    if a.cols() != b.cols() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.cols (A is {}x{})", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let occ_a = tile_occupancy(a); // tiles over (m/16) x (k/16)
    let occ_b = tile_occupancy(b); // tiles over (n/16) x (k/16)

    let tile_m = m.div_ceil(TILE_DIM);
    let tile_n = n.div_ceil(TILE_DIM);
    let tile_k = k.div_ceil(TILE_DIM);

    // Pre-round values when running in reduced precision (the data
    // transform casts the whole CSR value array once).
    let round = |v: f32| -> f32 {
        match precision {
            GemmPrecision::Half => F16::round_trip(v),
            GemmPrecision::Int8 => tcudb_types::quant::to_i8_saturating(v as f64) as f32,
            GemmPrecision::Int4 => tcudb_types::quant::to_i4_saturating(v as f64) as f32,
            GemmPrecision::Fp32 => v,
        }
    };

    let mut c = DenseMatrix::zeros(m, n);
    let mut processed = 0usize;
    let mut skipped = 0usize;
    let level = engine::simd_level();

    // Reused fragment buffers: A row-major, B transposed to k-major so the
    // per-row multiply streams both operands with unit stride.  B fragments
    // of the current k tile are gathered lazily once and reused across all
    // A row tiles (n/16 KiB of scratch).
    let mut a_frag = [0.0f32; FRAG_LEN];
    let mut b_frags: Vec<[f32; FRAG_LEN]> = vec![[0.0f32; FRAG_LEN]; tile_n];
    let mut b_gathered = vec![false; tile_n];

    // Walk k tiles outermost so each operand fragment is gathered at most
    // once per k tile, and multiply only the pairs where both operand
    // tiles are occupied.  Per output element, contributions still arrive
    // one product at a time in ascending k order (tk ascending outermost,
    // k ascending within a fragment) — the accumulation order of the dense
    // engine, so `tcu_spmm` matches [`crate::gemm::gemm_bt`] for Fp32/Half
    // and, within the exact f32 integer range (sums below 2²⁴), for the
    // pre-rounded Int8/Int4 values (per-tile f32 arithmetic, as in the
    // original kernel — the dense engine's wide i64 accumulation applies
    // to the dense entry points only).
    for tk in 0..tile_k {
        if let Some(ctx) = ctx {
            ctx.check()?;
        }
        let k_lo = tk * TILE_DIM;
        let k_hi = (k_lo + TILE_DIM).min(k);
        b_gathered.fill(false);
        for ti in 0..tile_m {
            let row_lo = ti * TILE_DIM;
            let row_hi = (row_lo + TILE_DIM).min(m);
            if !occ_a.get(ti, tk) {
                skipped += tile_n;
                continue;
            }
            let mut a_gathered = false;
            for tj in 0..tile_n {
                if !occ_b.get(tj, tk) {
                    skipped += 1;
                    continue;
                }
                processed += 1;
                if !a_gathered {
                    let w = TileWindow {
                        row_lo,
                        row_hi,
                        k_lo,
                        k_hi,
                    };
                    gather_fragment(a, w, false, round, &mut a_frag);
                    a_gathered = true;
                }
                let col_lo = tj * TILE_DIM;
                let col_hi = (col_lo + TILE_DIM).min(n);
                if !b_gathered[tj] {
                    let bw = TileWindow {
                        row_lo: col_lo,
                        row_hi: col_hi,
                        k_lo,
                        k_hi,
                    };
                    gather_fragment(b, bw, true, round, &mut b_frags[tj]);
                    b_gathered[tj] = true;
                }
                let b_frag = &b_frags[tj];
                // Dense 16×16×16 fragment multiply: saxpy rows of the
                // engine's arithmetic, skipping zero A lanes.
                for (li, i) in (row_lo..row_hi).enumerate() {
                    let arow = &a_frag[li * TILE_DIM..(li + 1) * TILE_DIM];
                    let crow = &mut c.row_mut(i)[col_lo..col_hi];
                    for (p, &av) in arow.iter().enumerate().take(k_hi - k_lo) {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b_frag[p * TILE_DIM..p * TILE_DIM + (col_hi - col_lo)];
                        engine::spmm_row_mac(level, av, brow, crow);
                    }
                }
            }
        }
    }

    let flops = processed as f64 * 2.0 * (TILE_DIM * TILE_DIM * TILE_DIM) as f64;
    let stats = SpmmStats {
        m,
        n,
        k,
        tiles_processed: processed,
        tiles_skipped: skipped,
        density_a: a.density(),
        density_b: b.density(),
        flops,
        dense_equivalent_flops: 2.0 * m as f64 * n as f64 * k as f64,
        bytes_touched: (a.byte_size() + b.byte_size()) as f64
            + processed as f64 * (TILE_DIM * TILE_DIM) as f64 * 4.0,
    };
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_bt, GemmPrecision};
    use proptest::prelude::*;

    fn random_sparse(rows: usize, cols: usize, density_inv: u64, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_add(1234);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut m = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if next() % density_inv == 0 {
                    m.set(i, j, (next() % 5 + 1) as f32);
                }
            }
        }
        m
    }

    #[test]
    fn spmm_matches_dense_gemm_bt() {
        let a_dense = random_sparse(40, 70, 8, 1);
        let b_dense = random_sparse(35, 70, 8, 2);
        let a = CsrMatrix::from_dense(&a_dense);
        let b = CsrMatrix::from_dense(&b_dense);
        let (c, stats) = tcu_spmm(&a, &b, GemmPrecision::Fp32).unwrap();
        let (expected, _) = gemm_bt(&a_dense, &b_dense, GemmPrecision::Fp32).unwrap();
        assert_eq!(c, expected);
        assert!(stats.tiles_skipped + stats.tiles_processed > 0);
        assert!(stats.flops <= stats.dense_equivalent_flops * 2.0);
    }

    #[test]
    fn sparse_inputs_skip_tiles() {
        // Block-diagonal-ish pattern: most tile pairs should be skipped.
        let mut a_dense = DenseMatrix::zeros(64, 64);
        let mut b_dense = DenseMatrix::zeros(64, 64);
        for i in 0..16 {
            a_dense.set(i, i, 1.0);
            b_dense.set(48 + i, 48 + i, 1.0);
        }
        let a = CsrMatrix::from_dense(&a_dense);
        let b = CsrMatrix::from_dense(&b_dense);
        let (c, stats) = tcu_spmm(&a, &b, GemmPrecision::Fp32).unwrap();
        // Operand tiles do not overlap in k → every product is zero.
        assert_eq!(c.count_nonzero(), 0);
        assert!(stats.tiles_processed == 0);
        assert!(stats.tiles_skipped > 0);
        assert_eq!(stats.skip_ratio(), 1.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 5));
        let b = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 6));
        assert!(tcu_spmm(&a, &b, GemmPrecision::Fp32).is_err());
    }

    #[test]
    fn occupancy_bitset_tracks_tiles() {
        let mut d = DenseMatrix::zeros(40, 40);
        d.set(0, 0, 1.0);
        d.set(17, 35, 2.0);
        let occ = tile_occupancy(&CsrMatrix::from_dense(&d));
        assert!(occ.get(0, 0));
        assert!(occ.get(1, 2));
        assert!(!occ.get(0, 1));
        assert!(!occ.get(2, 0));
        // Out-of-range lookups read as empty.
        assert!(!occ.get(99, 0));
        assert!(!occ.get(0, 99));
        assert_eq!(occ.count(), 2);
    }

    #[test]
    fn half_precision_exact_for_one_hot() {
        let a_dense = random_sparse(20, 33, 4, 7);
        // One-hot style 0/1 values.
        let mut a01 = DenseMatrix::zeros(20, 33);
        for i in 0..20 {
            for j in 0..33 {
                if a_dense.get(i, j) != 0.0 {
                    a01.set(i, j, 1.0);
                }
            }
        }
        let b01 = {
            let b = random_sparse(18, 33, 4, 9);
            let mut out = DenseMatrix::zeros(18, 33);
            for i in 0..18 {
                for j in 0..33 {
                    if b.get(i, j) != 0.0 {
                        out.set(i, j, 1.0);
                    }
                }
            }
            out
        };
        let (half, _) = tcu_spmm(
            &CsrMatrix::from_dense(&a01),
            &CsrMatrix::from_dense(&b01),
            GemmPrecision::Half,
        )
        .unwrap();
        let (fp32, _) = gemm_bt(&a01, &b01, GemmPrecision::Fp32).unwrap();
        assert_eq!(half, fp32);
    }

    #[test]
    fn empty_matrices() {
        let a = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let b = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let (c, stats) = tcu_spmm(&a, &b, GemmPrecision::Fp32).unwrap();
        assert_eq!(c.rows(), 0);
        assert_eq!(stats.tiles_processed, 0);
        assert_eq!(stats.skip_ratio(), 0.0);
    }

    #[test]
    fn ctx_spmm_matches_and_cancels_per_stripe() {
        use tcudb_types::sync::{CancellationToken, QueryContext};
        use tcudb_types::TcuError;
        let a_dense = random_sparse(40, 70, 6, 11);
        let b_dense = random_sparse(35, 70, 6, 12);
        let a = CsrMatrix::from_dense(&a_dense);
        let b = CsrMatrix::from_dense(&b_dense);
        let (plain, _) = tcu_spmm(&a, &b, GemmPrecision::Fp32).unwrap();

        // Unbounded context: identical result.
        let (via_ctx, _) =
            tcu_spmm_ctx(&a, &b, GemmPrecision::Fp32, &QueryContext::unbounded()).unwrap();
        assert_eq!(via_ctx, plain);

        // 70 columns → 5 k-tile stripes → 5 probes.  Cancel on the second:
        // typed error, no result.
        let token = CancellationToken::new();
        token.cancel_at_check(2);
        let ctx = QueryContext::with_token(token.clone());
        let err = tcu_spmm_ctx(&a, &b, GemmPrecision::Fp32, &ctx).unwrap_err();
        assert!(matches!(err, TcuError::Cancelled(_)), "{err}");
        assert_eq!(token.checks(), 2);
    }

    #[test]
    fn stats_density_reported() {
        let a_dense = random_sparse(32, 32, 2, 3);
        let a = CsrMatrix::from_dense(&a_dense);
        let (_, stats) = tcu_spmm(&a, &a, GemmPrecision::Fp32).unwrap();
        assert!((stats.density_a - a.density()).abs() < 1e-12);
        assert_eq!(stats.m, 32);
        assert_eq!(stats.n, 32);
        assert_eq!(stats.k, 32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// TCU-SpMM always agrees with the dense reference GEMM.
        #[test]
        fn prop_spmm_equals_dense(
            m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..200
        ) {
            let a_dense = random_sparse(m, k, 6, seed);
            let b_dense = random_sparse(n, k, 6, seed + 17);
            let (c, _) = tcu_spmm(
                &CsrMatrix::from_dense(&a_dense),
                &CsrMatrix::from_dense(&b_dense),
                GemmPrecision::Fp32,
            ).unwrap();
            let (expected, _) = gemm_bt(&a_dense, &b_dense, GemmPrecision::Fp32).unwrap();
            prop_assert_eq!(c, expected);
        }

        /// The number of processed + skipped tile pairs always equals the
        /// total tile-pair count of the dense iteration space.
        #[test]
        fn prop_tile_accounting(m in 1usize..50, k in 1usize..50, n in 1usize..50, seed in 0u64..100) {
            let a_dense = random_sparse(m, k, 10, seed);
            let b_dense = random_sparse(n, k, 10, seed + 3);
            let (_, stats) = tcu_spmm(
                &CsrMatrix::from_dense(&a_dense),
                &CsrMatrix::from_dense(&b_dense),
                GemmPrecision::Fp32,
            ).unwrap();
            let total = m.div_ceil(TILE_DIM) * n.div_ceil(TILE_DIM) * k.div_ceil(TILE_DIM);
            prop_assert_eq!(stats.tiles_processed + stats.tiles_skipped, total);
        }
    }
}
