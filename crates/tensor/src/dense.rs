//! Row-major dense `f32` matrices.

use tcudb_types::{TcuError, TcuResult};

/// A dense matrix of `f32` values stored row-major.
///
/// `f32` is the host-side staging type: the GEMM kernels round operands to
/// the target tensor-core precision (fp16/int8/int4) on the fly, exactly as
/// the paper's code generator casts columns when it fills WMMA fragments.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> TcuResult<DenseMatrix> {
        if data.len() != rows * cols {
            return Err(TcuError::ShapeMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Create a matrix from nested rows (for tests and small examples).
    pub fn from_rows(rows: &[Vec<f32>]) -> TcuResult<DenseMatrix> {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(TcuError::ShapeMismatch {
                    expected: format!("row of length {c}"),
                    got: format!("row of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// An identity matrix of size `n`.
    pub fn identity(n: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A `rows x cols` matrix filled with ones — the reduction operand
    /// `1_{1×n}` used by the group-by aggregation rewrite (§3.3).
    pub fn ones(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Add to one element.
    #[inline]
    pub fn add_to(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] += value;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrow one row as a mutable slice — the unit-stride accessor the
    /// kernel engine and TCU-SpMM scatter paths use instead of per-element
    /// `set`/`add_to` calls.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Number of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of non-zero elements (0.0 for an empty matrix).
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count_nonzero() as f64 / self.data.len() as f64
        }
    }

    /// Host-memory footprint in bytes (f32 staging representation).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Extract the sub-matrix `[row0, row0+nrows) x [col0, col0+ncols)`,
    /// zero-padding reads past the edge (tiles at the border of a matrix
    /// whose dimensions are not multiples of the tile size).
    pub fn sub_matrix(&self, row0: usize, col0: usize, nrows: usize, ncols: usize) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            let r = row0 + i;
            if r >= self.rows {
                break;
            }
            for j in 0..ncols {
                let c = col0 + j;
                if c >= self.cols {
                    break;
                }
                out.set(i, j, self.get(r, c));
            }
        }
        out
    }

    /// Add `other` into `self` element-wise (shapes must match).
    pub fn add_assign(&mut self, other: &DenseMatrix) -> TcuResult<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(TcuError::ShapeMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: format!("{}x{}", other.rows, other.cols),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Write `block` into `self` starting at `(row0, col0)`, accumulating
    /// (used by blocked GEMM when assembling the result).
    pub fn accumulate_block(&mut self, row0: usize, col0: usize, block: &DenseMatrix) {
        for i in 0..block.rows {
            let r = row0 + i;
            if r >= self.rows {
                break;
            }
            for j in 0..block.cols {
                let c = col0 + j;
                if c >= self.cols {
                    break;
                }
                self.add_to(r, c, block.get(i, j));
            }
        }
    }

    /// Maximum absolute element value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.add_to(1, 2, 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).is_ok());
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![3.0, 4.0]]).is_err());
    }

    #[test]
    fn identity_and_ones() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.count_nonzero(), 3);
        let ones = DenseMatrix::ones(1, 4);
        assert_eq!(ones.data(), &[1.0; 4]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn density_and_abs_max() {
        let m = DenseMatrix::from_rows(&[vec![0.0, -7.0], vec![3.0, 0.0]]).unwrap();
        assert_eq!(m.count_nonzero(), 2);
        assert!((m.density() - 0.5).abs() < 1e-12);
        assert_eq!(m.abs_max(), 7.0);
        assert_eq!(DenseMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn sub_matrix_pads_with_zeros() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = m.sub_matrix(1, 1, 2, 2);
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(1, 1), 0.0);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn accumulate_block_adds_in_place() {
        let mut m = DenseMatrix::zeros(3, 3);
        let b = DenseMatrix::ones(2, 2);
        m.accumulate_block(1, 1, &b);
        m.accumulate_block(1, 1, &b);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(2, 2), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn add_assign_checks_shapes() {
        let mut a = DenseMatrix::ones(2, 2);
        let b = DenseMatrix::ones(2, 2);
        a.add_assign(&b).unwrap();
        assert_eq!(a.get(0, 0), 2.0);
        let c = DenseMatrix::ones(3, 2);
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn byte_size() {
        assert_eq!(DenseMatrix::zeros(4, 4).byte_size(), 64);
    }
}
