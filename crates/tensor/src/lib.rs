#![warn(missing_docs)]
//! # tcudb-tensor
//!
//! The tensor/matrix substrate of TCUDB-RS.  On the paper's hardware this
//! role is played by NVIDIA's WMMA / cuBLAS kernels running on Tensor Core
//! Units; here the same algorithms are implemented as portable Rust
//! kernels so the engine above can execute them anywhere while the
//! simulated device (crate `tcudb-device`) charges them tensor-core cost.
//!
//! Components:
//!
//! * [`DenseMatrix`] — row-major `f32` matrices with the shape/layout
//!   helpers the query translator needs,
//! * [`engine`] — the tiled, operand-packed, multi-threaded kernel engine
//!   every dense entry point routes through (packing, MR×NR register-tiled
//!   microkernel over cache-sized k-blocks, row-panel threading),
//! * [`gemm`](mod@gemm) — dense matrix multiplication in emulated precisions
//!   (fp16-input / fp32-accumulate, int8 / int4-input / wide-integer-
//!   accumulate, and exact f64 reference),
//! * [`grouped`] — grouped reduction (§3.3): per-group sums either as a
//!   scatter-accumulate `segmented_reduce` or as an actual one-hot GEMM
//!   (`grouped_sum_gemm`) on the tiled engine,
//! * [`reference`](mod@reference) — the naive scalar kernels, kept as the bit-exact
//!   correctness oracle and perf baseline,
//! * [`sparse`] — CSR matrices and conversions,
//! * [`spmm`] — the TCU-SpMM operator of §4.2.4: tile the operands into
//!   16×16 blocks, skip all-zero tiles (flat bitset occupancy grid),
//!   multiply the surviving pairs on the shared microkernel,
//! * [`blocked`] — the MSplitGEMM-style blocked/pipelined GEMM of §4.2.3
//!   for operands that do not fit in device memory,
//! * [`nonzero`](mod@nonzero) — the `nonzero(·)` matrix→pairs conversion used between
//!   the stages of a multi-way join (§3.2).
//!
//! Every kernel returns a small "kernel statistics" struct (FLOPs, bytes
//! touched, tiles processed/skipped, blocks streamed) that the cost model
//! converts into simulated device time.

pub mod blocked;
pub mod dense;
pub mod engine;
pub mod gemm;
pub mod grouped;
pub mod nonzero;
pub mod reference;
pub mod sparse;
pub mod spmm;

pub use blocked::{blocked_gemm, blocked_gemm_bt, BlockedGemmStats};
pub use dense::DenseMatrix;
pub use gemm::{gemm, gemm_bt, GemmPrecision, GemmStats};
pub use grouped::{grouped_sum_gemm, one_hot_groups, segmented_reduce};
pub use nonzero::{nonzero, nonzero_with_values};
pub use sparse::CsrMatrix;
pub use spmm::{tcu_spmm, SpmmStats, TILE_DIM};
