//! The `nonzero(·)` operator used between multi-way join stages (§3.2).
//!
//! Given the result matrix of a join GEMM, `nonzero(M) = {(i, j) | M_ij > 0}`
//! recovers the matching row-pairs without copying the matrix back to the
//! host.  The multi-way join operator feeds these pairs straight into the
//! construction of the next stage's input matrix.

use crate::dense::DenseMatrix;

/// Return the coordinates of all strictly-positive entries, in row-major
/// order — the CUDA `nonzero` kernel the paper borrows from PyTorch.
pub fn nonzero(matrix: &DenseMatrix) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..matrix.rows() {
        let row = matrix.row(i);
        for (j, &v) in row.iter().enumerate() {
            if v > 0.0 {
                out.push((i, j));
            }
        }
    }
    out
}

/// Like [`nonzero`] but also returns the entry value (used when the join
/// result carries aggregate payloads, e.g. the matrix-multiplication query
/// of Figure 5 where `C_ij` is the SUM aggregate itself).
pub fn nonzero_with_values(matrix: &DenseMatrix) -> Vec<(usize, usize, f32)> {
    let mut out = Vec::new();
    for i in 0..matrix.rows() {
        let row = matrix.row(i);
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                out.push((i, j, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_returns_positive_coordinates_in_order() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 2.0, 0.0], vec![1.0, 0.0, 3.0]]).unwrap();
        assert_eq!(nonzero(&m), vec![(0, 1), (1, 0), (1, 2)]);
    }

    #[test]
    fn nonzero_ignores_negative_entries() {
        // The join encoding can only produce non-negative counts, but the
        // operator contract is "strictly positive".
        let m = DenseMatrix::from_rows(&[vec![-1.0, 0.0, 5.0]]).unwrap();
        assert_eq!(nonzero(&m), vec![(0, 2)]);
    }

    #[test]
    fn nonzero_with_values_keeps_payload_and_sign() {
        let m = DenseMatrix::from_rows(&[vec![-1.5, 0.0], vec![0.0, 2.5]]).unwrap();
        assert_eq!(nonzero_with_values(&m), vec![(0, 0, -1.5), (1, 1, 2.5)]);
    }

    #[test]
    fn empty_and_all_zero_matrices() {
        assert!(nonzero(&DenseMatrix::zeros(3, 3)).is_empty());
        assert!(nonzero(&DenseMatrix::zeros(0, 0)).is_empty());
        assert!(nonzero_with_values(&DenseMatrix::zeros(2, 2)).is_empty());
    }

    #[test]
    fn count_matches_count_nonzero_for_positive_matrices() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 4.0, 0.0]]).unwrap();
        assert_eq!(nonzero(&m).len(), m.count_nonzero());
    }
}
