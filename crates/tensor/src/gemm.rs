//! Dense GEMM entry points in emulated tensor-core precisions.
//!
//! The paper's TCU operators run `C = A × Bᵀ` (join patterns) or chains of
//! GEMMs in fp16-input / fp32-accumulate or int8/int4-input / int32-
//! accumulate modes.  These entry points reproduce that arithmetic
//! faithfully:
//!
//! * [`GemmPrecision::Half`]: both operands are rounded through IEEE
//!   binary16 before each multiply, products and sums are accumulated in
//!   f32 — the numeric contract of `mma.sync.aligned.m16n16k16.f32.f16.f16.f32`.
//! * [`GemmPrecision::Int8`] / [`GemmPrecision::Int4`]: operands are
//!   saturating-cast to the integer range and accumulated in i64 (standing
//!   in for the hardware's i32 accumulators, which never overflow for the
//!   matrix sizes the feasibility test admits).
//! * [`GemmPrecision::Fp32`]: plain f32 arithmetic — the "CUDA core"
//!   arithmetic used by the baselines.
//!
//! Execution happens on the tiled, operand-packed, multi-threaded engine
//! of [`crate::engine`]; the original naive kernels live in
//! [`crate::reference`] as the bit-exact correctness oracle.  Each call
//! returns [`GemmStats`] so the simulated device can charge the
//! corresponding tensor-core (or CUDA-core) time.

use crate::dense::DenseMatrix;
use crate::engine;
use tcudb_types::sync::QueryContext;
use tcudb_types::{Precision, TcuError, TcuResult};

/// The arithmetic mode of a GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPrecision {
    /// fp16 inputs, fp32 accumulate (TCU native).
    Half,
    /// int8 inputs, wide integer accumulate (TCU native).
    Int8,
    /// int4 inputs, wide integer accumulate (TCU native).
    Int4,
    /// fp32 inputs and accumulate (CUDA-core reference).
    Fp32,
}

impl From<Precision> for GemmPrecision {
    fn from(p: Precision) -> Self {
        match p {
            Precision::Half => GemmPrecision::Half,
            Precision::Int8 => GemmPrecision::Int8,
            Precision::Int4 => GemmPrecision::Int4,
            Precision::Fp32 => GemmPrecision::Fp32,
        }
    }
}

impl From<GemmPrecision> for Precision {
    fn from(p: GemmPrecision) -> Self {
        match p {
            GemmPrecision::Half => Precision::Half,
            GemmPrecision::Int8 => Precision::Int8,
            GemmPrecision::Int4 => Precision::Int4,
            GemmPrecision::Fp32 => Precision::Fp32,
        }
    }
}

/// Operation statistics reported by a GEMM kernel, consumed by the cost
/// model (CT_op of §4.2.2: `M·N·K·2 / peak_TFLOPS`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GemmStats {
    /// M dimension (rows of A / rows of C).
    pub m: usize,
    /// N dimension (cols of B / cols of C).
    pub n: usize,
    /// K dimension (cols of A / rows of B).
    pub k: usize,
    /// Floating-point (or integer multiply-add) operations: `2·M·N·K`.
    pub flops: f64,
    /// Bytes of operand + result data touched at the chosen precision.
    pub bytes_touched: f64,
    /// Precision the kernel ran in.
    pub precision: Precision,
}

impl GemmStats {
    pub(crate) fn new(m: usize, n: usize, k: usize, precision: Precision) -> GemmStats {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let elem = precision.size_bytes();
        // A: m×k, B: k×n at input precision; C: m×n at 4-byte accumulate.
        let bytes = (m * k + k * n) as f64 * elem + (m * n) as f64 * 4.0;
        GemmStats {
            m,
            n,
            k,
            flops,
            bytes_touched: bytes,
            precision,
        }
    }
}

/// Validate `A × B` operand shapes (`A.cols == B.rows`).
pub(crate) fn check_gemm_shapes(a: &DenseMatrix, b: &DenseMatrix) -> TcuResult<()> {
    if a.cols() != b.rows() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.rows, A is {}x{}", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Validate `A × Bᵀ` operand shapes (`A.cols == B.cols`).
pub(crate) fn check_gemm_bt_shapes(a: &DenseMatrix, b: &DenseMatrix) -> TcuResult<()> {
    if a.cols() != b.cols() {
        return Err(TcuError::ShapeMismatch {
            expected: format!("A.cols == B.cols, A is {}x{}", a.rows(), a.cols()),
            got: format!("B is {}x{}", b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Compute `C = A × B` in the requested precision.
///
/// Shapes: `A` is M×K, `B` is K×N, the result is M×N.  The thread count is
/// chosen automatically ([`engine::auto_threads`]).
pub fn gemm(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    let threads = engine::auto_threads(a.rows(), b.cols(), a.cols());
    gemm_with_threads(a, b, precision, threads)
}

/// [`gemm`] with an explicit thread count (used by the determinism tests
/// and the `perfbaseline` harness; results are identical for every count).
pub fn gemm_with_threads(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let out = engine::tiled_gemm(a, b, precision, threads);
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

/// [`gemm`] under a [`QueryContext`]: shards probe the context between
/// k blocks and a tripped context returns the typed
/// cancellation/deadline error instead of a result.
pub fn gemm_ctx(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    ctx: &QueryContext,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let threads = engine::auto_threads(m, n, k);
    let out = engine::tiled_gemm_ctx(a, b, precision, threads, ctx)?;
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

/// Convenience wrapper: `C = A × Bᵀ`, the orientation every join pattern of
/// §3 uses (both operands are laid out with the shared key domain along
/// their column dimension).
pub fn gemm_bt(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    let threads = engine::auto_threads(a.rows(), b.rows(), a.cols());
    gemm_bt_with_threads(a, b, precision, threads)
}

/// [`gemm_bt`] under a [`QueryContext`] — see [`gemm_ctx`].
pub fn gemm_bt_ctx(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    ctx: &QueryContext,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_bt_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let threads = engine::auto_threads(m, n, k);
    let out = engine::tiled_gemm_bt_ctx(a, b, precision, threads, ctx)?;
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

/// [`gemm_bt`] with an explicit thread count.
pub fn gemm_bt_with_threads(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
) -> TcuResult<(DenseMatrix, GemmStats)> {
    check_gemm_bt_shapes(a, b)?;
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let out = engine::tiled_gemm_bt(a, b, precision, threads);
    Ok((out, GemmStats::new(m, n, k, precision.into())))
}

/// Exact f64 reference multiplication used by accuracy experiments
/// (Table 1 MAPE) — not part of any simulated device path.
pub fn gemm_exact_f64(a: &DenseMatrix, b: &DenseMatrix) -> TcuResult<Vec<Vec<f64>>> {
    if a.cols() != b.rows() {
        return Err(TcuError::ShapeMismatch {
            expected: "A.cols == B.rows".into(),
            got: format!("{}x{} * {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = vec![vec![0.0f64; n]; m];
    for (i, crow) in c.iter_mut().enumerate() {
        for p in 0..k {
            let av = a.get(i, p) as f64;
            if av == 0.0 {
                continue;
            }
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv += av * b.get(p, j) as f64;
            }
        }
    }
    Ok(c)
}

/// Mean absolute percentage error between an approximate result matrix and
/// an exact reference (entries where the reference is zero are skipped,
/// matching how the paper reports MAPE for matrix-multiplication queries).
pub fn mape(approx: &DenseMatrix, exact: &[Vec<f64>]) -> f64 {
    assert_eq!(exact.len(), approx.rows(), "MAPE row-count mismatch");
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (i, erow) in exact.iter().enumerate() {
        assert_eq!(erow.len(), approx.cols(), "MAPE col-count mismatch");
        for (j, &e) in erow.iter().enumerate() {
            if e == 0.0 {
                continue;
            }
            total += ((approx.get(i, j) as f64 - e) / e).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn a2x3() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }
    fn b3x2() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap()
    }

    #[test]
    fn fp32_gemm_matches_hand_computed() {
        let (c, stats) = gemm(&a2x3(), &b3x2(), GemmPrecision::Fp32).unwrap();
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
        assert_eq!(stats.flops, 2.0 * 2.0 * 2.0 * 3.0);
        assert_eq!(stats.m, 2);
        assert_eq!(stats.n, 2);
        assert_eq!(stats.k, 3);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let err = gemm(&a2x3(), &a2x3(), GemmPrecision::Fp32);
        assert!(err.is_err());
        let err2 = gemm_bt(&a2x3(), &b3x2(), GemmPrecision::Fp32);
        assert!(err2.is_err());
    }

    #[test]
    fn gemm_bt_equals_gemm_with_transpose() {
        let a = a2x3();
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 1.0]]).unwrap();
        let (via_bt, _) = gemm_bt(&a, &b, GemmPrecision::Fp32).unwrap();
        let (via_t, _) = gemm(&a, &b.transpose(), GemmPrecision::Fp32).unwrap();
        assert_eq!(via_bt, via_t);
    }

    #[test]
    fn half_precision_is_exact_for_small_integers() {
        // 0/1 matrices (the join encoding) must multiply exactly in fp16.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0]]).unwrap();
        let (h, _) = gemm_bt(&a, &b, GemmPrecision::Half).unwrap();
        let (f, _) = gemm_bt(&a, &b, GemmPrecision::Fp32).unwrap();
        assert_eq!(h, f);
    }

    #[test]
    fn half_precision_loses_accuracy_for_large_values() {
        let a = DenseMatrix::from_rows(&[vec![30001.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![1.0]]).unwrap();
        let (h, _) = gemm(&a, &b, GemmPrecision::Half).unwrap();
        // 30001 is not exactly representable in binary16.
        assert_ne!(h.get(0, 0), 30001.0);
        assert!((h.get(0, 0) - 30001.0).abs() < 32.0);
    }

    #[test]
    fn int8_gemm_saturates() {
        let a = DenseMatrix::from_rows(&[vec![300.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let (c, _) = gemm(&a, &b, GemmPrecision::Int8).unwrap();
        // 300 saturates to 127 → 127 + 2 = 129.
        assert_eq!(c.get(0, 0), 129.0);
    }

    #[test]
    fn int4_gemm_saturates() {
        let a = DenseMatrix::from_rows(&[vec![10.0, -10.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let (c, _) = gemm(&a, &b, GemmPrecision::Int4).unwrap();
        // 10 → 7, −10 → −8 ⇒ −1.
        assert_eq!(c.get(0, 0), -1.0);
    }

    #[test]
    fn int8_wide_accumulation_survives_f32_mantissa_overflow() {
        // 20 000 · 127² = 322 580 000 = 32 · 10 080 625: above the 2²⁴ f32
        // integer range (so f32 accumulation drifts) yet exactly
        // representable as an f32, so wide integer accumulation must return
        // it exactly.  Regression test for the old non-transposed int
        // kernel, which accumulated through f32 `add_to`.
        let k = 20_000;
        let exact = 20_000.0 * 127.0 * 127.0;
        let a = DenseMatrix::from_vec(1, k, vec![127.0; k]).unwrap();
        let b_col = DenseMatrix::from_vec(k, 1, vec![127.0; k]).unwrap();
        let b_row = DenseMatrix::from_vec(1, k, vec![127.0; k]).unwrap();
        let (c, _) = gemm(&a, &b_col, GemmPrecision::Int8).unwrap();
        assert_eq!(c.get(0, 0), exact);
        let (cbt, _) = gemm_bt(&a, &b_row, GemmPrecision::Int8).unwrap();
        assert_eq!(cbt.get(0, 0), exact);
        let (r, _) = crate::reference::gemm(&a, &b_col, GemmPrecision::Int8).unwrap();
        assert_eq!(r.get(0, 0), exact);
        let (rbt, _) = crate::reference::gemm_bt(&a, &b_row, GemmPrecision::Int8).unwrap();
        assert_eq!(rbt.get(0, 0), exact);
    }

    #[test]
    fn ctx_wrappers_match_and_cancel() {
        use tcudb_types::sync::{CancellationToken, QueryContext};
        let ctx = QueryContext::unbounded();
        let (c, _) = gemm_ctx(&a2x3(), &b3x2(), GemmPrecision::Fp32, &ctx).unwrap();
        let (plain, _) = gemm(&a2x3(), &b3x2(), GemmPrecision::Fp32).unwrap();
        assert_eq!(c, plain);
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 1.0]]).unwrap();
        let (cbt, _) = gemm_bt_ctx(&a2x3(), &b, GemmPrecision::Fp32, &ctx).unwrap();
        let (plainbt, _) = gemm_bt(&a2x3(), &b, GemmPrecision::Fp32).unwrap();
        assert_eq!(cbt, plainbt);

        let token = CancellationToken::new();
        token.cancel();
        let cancelled = QueryContext::with_token(token);
        assert!(gemm_ctx(&a2x3(), &b3x2(), GemmPrecision::Fp32, &cancelled).is_err());
        assert!(gemm_bt_ctx(&a2x3(), &b, GemmPrecision::Fp32, &cancelled).is_err());
    }

    #[test]
    fn stats_bytes_scale_with_precision() {
        let (_, half) = gemm(&a2x3(), &b3x2(), GemmPrecision::Half).unwrap();
        let (_, fp32) = gemm(&a2x3(), &b3x2(), GemmPrecision::Fp32).unwrap();
        assert!(half.bytes_touched < fp32.bytes_touched);
        assert_eq!(half.precision, Precision::Half);
    }

    #[test]
    fn exact_reference_and_mape() {
        let a = a2x3();
        let b = b3x2();
        let exact = gemm_exact_f64(&a, &b).unwrap();
        let (approx, _) = gemm(&a, &b, GemmPrecision::Fp32).unwrap();
        assert_eq!(mape(&approx, &exact), 0.0);
        assert!(gemm_exact_f64(&a, &a).is_err());
    }

    #[test]
    fn precision_from_conversion() {
        assert_eq!(GemmPrecision::from(Precision::Half), GemmPrecision::Half);
        assert_eq!(GemmPrecision::from(Precision::Int8), GemmPrecision::Int8);
        assert_eq!(GemmPrecision::from(Precision::Int4), GemmPrecision::Int4);
        assert_eq!(GemmPrecision::from(Precision::Fp32), GemmPrecision::Fp32);
        assert_eq!(Precision::from(GemmPrecision::Half), Precision::Half);
        assert_eq!(Precision::from(GemmPrecision::Int8), Precision::Int8);
        assert_eq!(Precision::from(GemmPrecision::Int4), Precision::Int4);
        assert_eq!(Precision::from(GemmPrecision::Fp32), Precision::Fp32);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// fp16 GEMM on 0/1 matrices (the join encoding) is always exact.
        #[test]
        fn prop_half_exact_on_binary_matrices(
            m in 1usize..8, k in 1usize..16, n in 1usize..8, seed in 0u64..1000
        ) {
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) & 1) as f32
            };
            let a = DenseMatrix::from_vec(m, k, (0..m*k).map(|_| next()).collect()).unwrap();
            let b = DenseMatrix::from_vec(n, k, (0..n*k).map(|_| next()).collect()).unwrap();
            let (h, _) = gemm_bt(&a, &b, GemmPrecision::Half).unwrap();
            let (f, _) = gemm_bt(&a, &b, GemmPrecision::Fp32).unwrap();
            prop_assert_eq!(h, f);
        }

        /// GEMM against an identity matrix returns the operand unchanged
        /// (fp32 path).
        #[test]
        fn prop_identity_is_neutral(m in 1usize..6, k in 1usize..6, seed in 0u64..1000) {
            let mut state = seed.wrapping_add(7);
            let mut next = || {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((state >> 40) % 17) as f32 - 8.0
            };
            let a = DenseMatrix::from_vec(m, k, (0..m*k).map(|_| next()).collect()).unwrap();
            let i = DenseMatrix::identity(k);
            let (c, _) = gemm(&a, &i, GemmPrecision::Fp32).unwrap();
            prop_assert_eq!(c, a);
        }
    }
}
