//! The tiled, operand-packed, multi-threaded kernel engine.
//!
//! Every dense kernel entry point of this crate ([`crate::gemm::gemm`],
//! [`crate::gemm::gemm_bt`], [`crate::blocked::blocked_gemm`] and the
//! dense-tile path inside [`crate::spmm::tcu_spmm`]) routes through this
//! module.  The naive scalar kernels live on in [`crate::reference`] as the
//! correctness oracle; this engine produces the same results (see the
//! numeric contract below) while running close to what the host hardware
//! allows, mirroring the fragment-granular execution model of the paper's
//! WMMA kernels.
//!
//! # Kernel engine architecture
//!
//! 1. **Packing.**  Both operands are packed exactly once per call into
//!    contiguous, precision-cast panels (the paper's data-transformation
//!    step, which casts whole fragments before the MMA):
//!    * `Fp32` → `f32` panels as-is,
//!    * `Half` → `f32` panels rounded through IEEE binary16
//!      ([`F16::round_trip`]) up front,
//!    * `Int8` / `Int4` → saturating-cast `i32` panels.
//!
//!    The A operand is packed into row tiles of MR rows, the B operand into
//!    tiles of NR logical rows (rows of `Bᵀ` for the `A × B` orientation —
//!    packing performs the transpose, so no materialised transpose copy is
//!    ever needed).  Within a tile, the MR (resp. NR) values of each k-step
//!    are interleaved contiguously, so the microkernel reads both panels
//!    with unit stride and zero bounds checks.
//!
//! 2. **Microkernel.**  An MR×NR register-tiled kernel walks the shared k
//!    dimension in cache-sized [`KC`] blocks.  Accumulators stay in
//!    registers for a whole k-block and are spilled to the output buffer
//!    between blocks; loads/stores of the native accumulator type are
//!    exact, and every output element receives its products one at a time
//!    in ascending k order — the accumulation order of the reference
//!    kernels.  The f32 microkernel is selected at runtime from the host's
//!    SIMD features (no build flags, no dependencies): an AVX-512 8×32
//!    kernel, an AVX2+FMA 4×16 kernel, or the portable scalar 4×8 kernel.
//!    Integer precisions accumulate in `i64` (standing in for the
//!    hardware's never-overflowing i32 accumulators) and convert to `f32`
//!    exactly once at store time.
//!
//! 3. **Threading.**  Result row panels are sharded across the shared
//!    workspace [`WorkerPool`] (`tcudb_types::pool`), so kernel
//!    parallelism draws on the same thread budget as the serving layer's
//!    workers and the executor's scan morsels.  Each output element is
//!    computed by exactly one thread in the same order as the
//!    single-threaded engine, so results are identical for every thread
//!    count.  The thread count is capped by the pool's currently idle
//!    share and multi-threading is bypassed entirely below
//!    [`PARALLEL_MIN_WORK`] multiply-accumulates, keeping small/test
//!    matrices single-threaded and cheap.
//!
//! # Numeric contract
//!
//! * `Half`, `Int8`, `Int4` — bit-identical to [`crate::reference`] for
//!   **all** inputs.  fp16-rounded operands carry ≤ 11-bit significands, so
//!   every pairwise product is exactly representable in f32 and fused
//!   multiply-add equals separate multiply-then-add bit-for-bit; integer
//!   accumulation is exact and order-independent.
//! * `Fp32` — bit-identical to the reference whenever operand products are
//!   exactly representable: 0/1 join encodings, comparison matrices,
//!   integer-valued keys and aggregates up to 2²⁴ — every encoding the
//!   query translator emits.  For general reals the SIMD paths keep the
//!   full-precision product per MAC (fused multiply-add, the FFMA
//!   arithmetic of real CUDA cores), which is at least as accurate as the
//!   unfused reference; the portable scalar path accumulates unfused.

use crate::dense::DenseMatrix;
use crate::gemm::GemmPrecision;
use std::sync::Mutex;
use tcudb_types::quant::{to_i4_saturating, to_i8_saturating};
use tcudb_types::sync::{locked, QueryContext};
use tcudb_types::{TcuResult, WorkerPool, F16};

/// Scalar-fallback microkernel register-tile rows.
pub const MR: usize = 4;

/// Scalar-fallback microkernel register-tile columns.
pub const NR: usize = 8;

/// k-dimension block size: one `NR × KC` B panel plus one `MR × KC` A panel
/// stay resident in L1 while the accumulators live in registers.
pub const KC: usize = 512;

/// Minimum `m·n·k` multiply-accumulate count before the engine shards row
/// panels across threads; below this, threading overhead dominates.
pub const PARALLEL_MIN_WORK: u128 = 1 << 22;

/// Scalar element type a microkernel instantiation operates on.
///
/// `Acc` is the accumulator type of the emulated MMA contract: `f32` for
/// fp32/fp16 inputs, `i64` (wide integer) for int8/int4 inputs.
pub trait MicroElem: Copy + Default + Send + Sync + 'static {
    /// Accumulator type.
    type Acc: Copy + Default + Send + Sync + 'static;
    /// One multiply-accumulate step: `acc + a·b`, unfused.
    fn mac(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;
}

impl MicroElem for f32 {
    type Acc = f32;
    #[inline(always)]
    fn mac(acc: f32, a: f32, b: f32) -> f32 {
        acc + a * b
    }
}

impl MicroElem for i32 {
    type Acc = i64;
    #[inline(always)]
    fn mac(acc: i64, a: i32, b: i32) -> i64 {
        acc + a as i64 * b as i64
    }
}

/// The SIMD tier the f32 microkernel runs on, detected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// AVX-512F + FMA: 8×32 register tile (16 zmm accumulators).
    Avx512,
    /// AVX2 + FMA: 4×16 register tile (8 ymm accumulators).
    Avx2Fma,
    /// Portable scalar 4×8 tile, unfused multiply-add.
    Scalar,
}

impl SimdLevel {
    /// The (MR, NR) register-tile shape of this tier.
    pub fn lanes(self) -> (usize, usize) {
        match self {
            SimdLevel::Avx512 => (x86::AVX512_MR, x86::AVX512_NR),
            SimdLevel::Avx2Fma => (x86::AVX2_MR, x86::AVX2_NR),
            SimdLevel::Scalar => (MR, NR),
        }
    }
}

/// Detect the best available f32 microkernel tier on this host.
pub fn simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdLevel::Avx2Fma;
        }
    }
    SimdLevel::Scalar
}

/// The thread count the engine would pick on this host for an `m×n×k`
/// multiplication: 1 below [`PARALLEL_MIN_WORK`], otherwise the shared
/// [`WorkerPool`]'s currently idle share (never more than the number of
/// row panels) — kernel fan-out shrinks while serve workers are busy.
pub fn auto_threads(m: usize, n: usize, k: usize) -> usize {
    let work = m as u128 * n as u128 * k as u128;
    if work < PARALLEL_MIN_WORK {
        return 1;
    }
    WorkerPool::shared().scoped_parallelism()
}

/// Compute `C = A × B` (`A`: m×k, `B`: k×n) on the tiled engine.
///
/// Shapes must already be validated (`a.cols() == b.rows()`); the public
/// wrappers in [`crate::gemm`](mod@crate::gemm) do so and attach [`crate::gemm::GemmStats`].
pub fn tiled_gemm(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "tiled_gemm shape mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    dispatch(a, b, true, b.cols(), precision, threads, None)
}

/// [`tiled_gemm`] under a [`QueryContext`]: every shard probes the
/// context at each k-block boundary and stops early when it trips; the
/// partial output is discarded and the typed cancellation/deadline error
/// is returned.
pub fn tiled_gemm_ctx(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
    ctx: &QueryContext,
) -> TcuResult<DenseMatrix> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "tiled_gemm shape mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let out = dispatch(a, b, true, b.cols(), precision, threads, Some(ctx));
    ctx.error_if_done()?;
    Ok(out)
}

/// Compute `C = A × Bᵀ` (`A`: m×k, `B`: n×k) on the tiled engine — the
/// orientation every join pattern of §3 uses.
pub fn tiled_gemm_bt(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "tiled_gemm_bt shape mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    dispatch(a, b, false, b.rows(), precision, threads, None)
}

/// [`tiled_gemm_bt`] under a [`QueryContext`] — see [`tiled_gemm_ctx`].
pub fn tiled_gemm_bt_ctx(
    a: &DenseMatrix,
    b: &DenseMatrix,
    precision: GemmPrecision,
    threads: usize,
    ctx: &QueryContext,
) -> TcuResult<DenseMatrix> {
    assert_eq!(
        a.cols(),
        b.cols(),
        "tiled_gemm_bt shape mismatch: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let out = dispatch(a, b, false, b.rows(), precision, threads, Some(ctx));
    ctx.error_if_done()?;
    Ok(out)
}

/// One cancellation probe from inside a shard: counts a checkpoint and
/// reports whether the shard should stop.  The shard exits quietly; the
/// entry point surfaces the typed error via `error_if_done`.
#[inline]
fn shard_should_stop(ctx: Option<&QueryContext>) -> bool {
    ctx.is_some_and(|c| c.check().is_err())
}

/// Single precision dispatch table for both operand orientations (the
/// per-entry-point `match precision` blocks of the old kernels collapse to
/// this one place).
#[allow(clippy::too_many_arguments)]
fn dispatch(
    a: &DenseMatrix,
    b: &DenseMatrix,
    b_from_columns: bool,
    n: usize,
    precision: GemmPrecision,
    threads: usize,
    ctx: Option<&QueryContext>,
) -> DenseMatrix {
    let m = a.rows();
    let data: Vec<f32> = match precision {
        GemmPrecision::Fp32 => run_f32(a, b, b_from_columns, n, threads, |v| v, ctx),
        GemmPrecision::Half => run_f32(a, b, b_from_columns, n, threads, F16::round_trip, ctx),
        GemmPrecision::Int8 => run_generic::<i32>(
            a,
            b,
            b_from_columns,
            n,
            threads,
            |v| to_i8_saturating(v as f64) as i32,
            ctx,
        )
        .into_iter()
        .map(|acc| acc as f32)
        .collect(),
        GemmPrecision::Int4 => run_generic::<i32>(
            a,
            b,
            b_from_columns,
            n,
            threads,
            |v| to_i4_saturating(v as f64) as i32,
            ctx,
        )
        .into_iter()
        .map(|acc| acc as f32)
        .collect(),
    };
    DenseMatrix::from_vec(m, n, data).expect("engine output buffer matches m×n")
}

/// f32 panel multiply on the detected SIMD tier (Fp32 and Half paths).
fn run_f32(
    a: &DenseMatrix,
    b: &DenseMatrix,
    b_from_columns: bool,
    n: usize,
    threads: usize,
    cast: impl Fn(f32) -> f32 + Copy,
    ctx: Option<&QueryContext>,
) -> Vec<f32> {
    let level = simd_level();
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar {
        return run_f32_simd(a, b, b_from_columns, n, threads, cast, level, ctx);
    }
    let _ = level;
    run_generic::<f32>(a, b, b_from_columns, n, threads, cast, ctx)
}

/// f32 panel multiply on a detected x86 SIMD tier.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn run_f32_simd(
    a: &DenseMatrix,
    b: &DenseMatrix,
    b_from_columns: bool,
    n: usize,
    threads: usize,
    cast: impl Fn(f32) -> f32 + Copy,
    level: SimdLevel,
    ctx: Option<&QueryContext>,
) -> Vec<f32> {
    let (mr, nr) = level.lanes();
    let apack = pack_panels(a, false, mr, cast);
    let bpack = pack_panels(b, b_from_columns, nr, cast);
    let (m, k) = (a.rows(), a.cols());
    let mut c = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    shard_rows(&mut c, m, n, mr, threads, |chunk, row_tile0, rows| {
        F32Shard {
            apack: &apack,
            bpack: &bpack,
            row_tile0,
            rows,
            n,
            k,
            level,
            ctx,
        }
        .run(chunk)
    });
    c
}

/// Pack both operands and run the portable generic panel multiplication
/// (the int paths and the no-SIMD f32 fallback).
fn run_generic<T: MicroElem>(
    a: &DenseMatrix,
    b: &DenseMatrix,
    b_from_columns: bool,
    n: usize,
    threads: usize,
    cast: impl Fn(f32) -> T + Copy,
    ctx: Option<&QueryContext>,
) -> Vec<T::Acc> {
    let apack = pack_panels(a, false, MR, cast);
    let bpack = pack_panels(b, b_from_columns, NR, cast);
    let (m, k) = (a.rows(), a.cols());
    let mut c = vec![T::Acc::default(); m * n];
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    shard_rows(&mut c, m, n, MR, threads, |chunk, row_tile0, rows| {
        GemmShard {
            apack: &apack,
            bpack: &bpack,
            row_tile0,
            rows,
            n,
            k,
            ctx,
        }
        .run(chunk)
    });
    c
}

/// Pack an operand into `tile`-row interleaved panels.
///
/// Logical row `r` of the panel is row `r` of `src` when `from_columns` is
/// false, column `r` of `src` when true (this is how `A × B` reuses the
/// `A × Bᵀ` microkernel without materialising a transpose).  Panel `t`
/// holds logical rows `t·tile .. (t+1)·tile`; within a panel the `tile`
/// values of each k step are adjacent, and rows past the edge are
/// zero-padded (their lanes are computed and discarded, never stored).
fn pack_panels<T: MicroElem>(
    src: &DenseMatrix,
    from_columns: bool,
    tile: usize,
    cast: impl Fn(f32) -> T,
) -> Vec<T> {
    let (rows, k) = if from_columns {
        (src.cols(), src.rows())
    } else {
        (src.rows(), src.cols())
    };
    let tiles = rows.div_ceil(tile);
    let mut out = vec![T::default(); tiles * tile * k];
    if from_columns {
        for kk in 0..k {
            let srow = src.row(kk);
            for (r, &v) in srow.iter().enumerate() {
                out[(r / tile) * tile * k + kk * tile + r % tile] = cast(v);
            }
        }
    } else {
        for r in 0..rows {
            let base = (r / tile) * tile * k + r % tile;
            for (kk, &v) in src.row(r).iter().enumerate() {
                out[base + kk * tile] = cast(v);
            }
        }
    }
    out
}

/// Split `c` (`m×n` row-major) into per-thread chunks of whole `mr`-row
/// tiles and run `work(chunk, row_tile0, rows)` on each, through the
/// shared [`WorkerPool`] when `threads > 1`.  Every output element is
/// owned by exactly one chunk, so results are identical for every thread
/// count.
fn shard_rows<A: Send>(
    c: &mut [A],
    m: usize,
    n: usize,
    mr: usize,
    threads: usize,
    work: impl Fn(&mut [A], usize, usize) + Send + Sync,
) {
    let row_tiles = m.div_ceil(mr);
    let threads = threads.clamp(1, row_tiles);
    if threads == 1 {
        work(c, 0, m);
        return;
    }
    let rows_per = row_tiles.div_ceil(threads) * mr;
    // Park each disjoint output chunk in an indexed slot; the morsel for
    // index `i` takes exclusive ownership of chunk `i` out of its slot.
    let chunks: Vec<Mutex<Option<&mut [A]>>> = c
        .chunks_mut(rows_per * n)
        .map(|chunk| Mutex::new(Some(chunk)))
        .collect();
    WorkerPool::shared().run_chunks(chunks.len(), threads, |idx| {
        let chunk = locked(&chunks[idx])
            .take()
            // lint: allow(panic) unreachable: run_chunks hands out each
            // index exactly once, so every slot is taken exactly once
            .expect("row-panel chunk taken once");
        let rows = chunk.len() / n;
        work(chunk, idx * (rows_per / mr), rows);
    });
}

/// One thread's slice of the portable generic computation: a contiguous
/// range of A row tiles against the full packed B operand.
struct GemmShard<'a, T: MicroElem> {
    apack: &'a [T],
    bpack: &'a [T],
    /// Index of this shard's first A row tile.
    row_tile0: usize,
    /// Number of result rows owned by this shard.
    rows: usize,
    n: usize,
    k: usize,
    /// Cancellation governor, probed at every k-block boundary.
    ctx: Option<&'a QueryContext>,
}

impl<T: MicroElem> GemmShard<'_, T> {
    /// Run the shard over its output chunk (`rows × n`, row-major).
    /// Stops early (leaving the chunk partial) when the context trips;
    /// the entry point discards the buffer and reports the typed error.
    fn run(&self, c: &mut [T::Acc]) {
        let mut kb = 0usize;
        while kb < self.k {
            if shard_should_stop(self.ctx) {
                return;
            }
            let kend = (kb + KC).min(self.k);
            for jt in 0..self.n.div_ceil(NR) {
                for it in 0..self.rows.div_ceil(MR) {
                    self.micro_tile(c, it, jt, kb, kend);
                }
            }
            kb = kend;
        }
    }

    /// The portable MR×NR register-tiled microkernel over one k block.
    ///
    /// Accumulators are loaded from `c` at block entry (exact, native
    /// type), receive one product per k step in ascending k order, and are
    /// stored back at block exit — the accumulation order of the reference
    /// kernels, retained bit-for-bit.
    #[inline]
    fn micro_tile(&self, c: &mut [T::Acc], it: usize, jt: usize, kb: usize, kend: usize) {
        let (n, k) = (self.n, self.k);
        let i0 = it * MR;
        let j0 = jt * NR;
        let mr = MR.min(self.rows - i0);
        let nr = NR.min(n - j0);
        let abase = (self.row_tile0 + it) * MR * k;
        let ablk = &self.apack[abase + kb * MR..abase + kend * MR];
        let bbase = jt * NR * k;
        let bblk = &self.bpack[bbase + kb * NR..bbase + kend * NR];

        let mut acc = [[T::Acc::default(); NR]; MR];
        if kb != 0 {
            for (ir, accr) in acc.iter_mut().enumerate().take(mr) {
                let crow = &c[(i0 + ir) * n + j0..(i0 + ir) * n + j0 + nr];
                accr[..nr].copy_from_slice(crow);
            }
        }
        for (af, bf) in ablk.chunks_exact(MR).zip(bblk.chunks_exact(NR)) {
            let af: &[T; MR] = af.try_into().expect("A panel chunk is MR wide");
            let bf: &[T; NR] = bf.try_into().expect("B panel chunk is NR wide");
            for (accr, &av) in acc.iter_mut().zip(af.iter()) {
                for (accv, &bv) in accr.iter_mut().zip(bf.iter()) {
                    *accv = T::mac(*accv, av, bv);
                }
            }
        }
        for (ir, accr) in acc.iter().enumerate().take(mr) {
            let crow = &mut c[(i0 + ir) * n + j0..(i0 + ir) * n + j0 + nr];
            crow.copy_from_slice(&accr[..nr]);
        }
    }
}

/// One thread's slice of the SIMD f32 computation.
#[cfg(target_arch = "x86_64")]
struct F32Shard<'a> {
    apack: &'a [f32],
    bpack: &'a [f32],
    row_tile0: usize,
    rows: usize,
    n: usize,
    k: usize,
    level: SimdLevel,
    /// Cancellation governor, probed at every k-block boundary.
    ctx: Option<&'a QueryContext>,
}

#[cfg(target_arch = "x86_64")]
impl F32Shard<'_> {
    fn run(&self, c: &mut [f32]) {
        let (mr_l, nr_l) = self.level.lanes();
        let (n, k) = (self.n, self.k);
        let mut kb = 0usize;
        while kb < k {
            if shard_should_stop(self.ctx) {
                return;
            }
            let kend = (kb + KC).min(k);
            let first = kb == 0;
            for jt in 0..n.div_ceil(nr_l) {
                let j0 = jt * nr_l;
                let nr = nr_l.min(n - j0);
                let bbase = jt * nr_l * k;
                let bblk = &self.bpack[bbase + kb * nr_l..bbase + kend * nr_l];
                for it in 0..self.rows.div_ceil(mr_l) {
                    let i0 = it * mr_l;
                    let mr = mr_l.min(self.rows - i0);
                    let abase = (self.row_tile0 + it) * mr_l * k;
                    let ablk = &self.apack[abase + kb * mr_l..abase + kend * mr_l];
                    // SAFETY (all three calls): `ablk`/`bblk` hold
                    // `kend-kb` steps of `mr_l`/`nr_l` packed lanes; the
                    // output tile rows `i0..i0+mr` and columns `j0..j0+nr`
                    // lie inside the `rows × n` chunk `c`, so every
                    // strided row pointer stays in bounds; the required
                    // CPU features were verified by `simd_level()`.
                    unsafe {
                        let cptr = c.as_mut_ptr().add(i0 * n + j0);
                        if mr == mr_l && nr == nr_l {
                            match self.level {
                                SimdLevel::Avx512 => {
                                    x86::tile_f32_avx512(ablk, bblk, cptr, n, first)
                                }
                                SimdLevel::Avx2Fma => {
                                    x86::tile_f32_avx2(ablk, bblk, cptr, n, first)
                                }
                                SimdLevel::Scalar => unreachable!("scalar uses GemmShard"),
                            }
                        } else {
                            x86::tile_f32_edge_fused(
                                ablk,
                                bblk,
                                cptr,
                                n,
                                x86::EdgeShape {
                                    mr,
                                    nr,
                                    lane_mr: mr_l,
                                    lane_nr: nr_l,
                                },
                                first,
                            );
                        }
                    }
                }
            }
            kb = kend;
        }
    }
}

/// Runtime-detected x86-64 microkernels.  All functions here require the
/// CPU features named in their `target_feature` attributes, which
/// [`simd_level`] verifies before any call site is reachable.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    pub const AVX512_MR: usize = 8;
    pub const AVX512_NR: usize = 32;
    pub const AVX2_MR: usize = 4;
    pub const AVX2_NR: usize = 16;

    /// Edge-tile geometry: `mr×nr` live lanes inside a
    /// `lane_mr×lane_nr`-packed tile.
    pub struct EdgeShape {
        pub mr: usize,
        pub nr: usize,
        pub lane_mr: usize,
        pub lane_nr: usize,
    }

    /// 8×32 f32 microkernel: 16 zmm accumulators, one fused
    /// multiply-add per operand product.
    ///
    /// # Safety
    /// Requires AVX-512F (+FMA semantics of `vfmadd`); `ablk.len()` must be
    /// a multiple of 8 and `bblk.len()` the matching multiple of 32; `c`
    /// must point at a tile whose 8 rows of 32 f32 at `stride` spacing are
    /// writable.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile_f32_avx512(
        ablk: &[f32],
        bblk: &[f32],
        c: *mut f32,
        stride: usize,
        first: bool,
    ) {
        let mut acc = [[_mm512_setzero_ps(); 2]; 8];
        if !first {
            for (r, accr) in acc.iter_mut().enumerate() {
                accr[0] = _mm512_loadu_ps(c.add(r * stride));
                accr[1] = _mm512_loadu_ps(c.add(r * stride + 16));
            }
        }
        let steps = ablk.len() / 8;
        for kk in 0..steps {
            let b0 = _mm512_loadu_ps(bblk.as_ptr().add(kk * 32));
            let b1 = _mm512_loadu_ps(bblk.as_ptr().add(kk * 32 + 16));
            for (r, accr) in acc.iter_mut().enumerate() {
                let a = _mm512_set1_ps(*ablk.get_unchecked(kk * 8 + r));
                accr[0] = _mm512_fmadd_ps(a, b0, accr[0]);
                accr[1] = _mm512_fmadd_ps(a, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            _mm512_storeu_ps(c.add(r * stride), accr[0]);
            _mm512_storeu_ps(c.add(r * stride + 16), accr[1]);
        }
    }

    /// 4×16 f32 microkernel: 8 ymm accumulators, fused multiply-add.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `ablk.len()` must be a multiple of 4 and
    /// `bblk.len()` the matching multiple of 16; `c` must point at a tile
    /// whose 4 rows of 16 f32 at `stride` spacing are writable.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_f32_avx2(
        ablk: &[f32],
        bblk: &[f32],
        c: *mut f32,
        stride: usize,
        first: bool,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; 4];
        if !first {
            for (r, accr) in acc.iter_mut().enumerate() {
                accr[0] = _mm256_loadu_ps(c.add(r * stride));
                accr[1] = _mm256_loadu_ps(c.add(r * stride + 8));
            }
        }
        let steps = ablk.len() / 4;
        for kk in 0..steps {
            let b0 = _mm256_loadu_ps(bblk.as_ptr().add(kk * 16));
            let b1 = _mm256_loadu_ps(bblk.as_ptr().add(kk * 16 + 8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ablk.get_unchecked(kk * 4 + r));
                accr[0] = _mm256_fmadd_ps(a, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(a, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.add(r * stride), accr[0]);
            _mm256_storeu_ps(c.add(r * stride + 8), accr[1]);
        }
    }

    /// Edge-tile cleanup with scalar fused multiply-adds — same fused
    /// rounding as the vector kernels, so a matrix is accumulated with one
    /// uniform arithmetic regardless of where its tiles fall.
    ///
    /// # Safety
    /// Requires FMA; `ablk`/`bblk` are packed with `shape.lane_mr` /
    /// `shape.lane_nr` lanes per k step; `c` must point at a tile whose
    /// `shape.mr` rows of `shape.nr` f32 at `stride` spacing are writable.
    #[target_feature(enable = "fma")]
    pub unsafe fn tile_f32_edge_fused(
        ablk: &[f32],
        bblk: &[f32],
        c: *mut f32,
        stride: usize,
        shape: EdgeShape,
        first: bool,
    ) {
        const MAX_MR: usize = AVX512_MR;
        const MAX_NR: usize = AVX512_NR;
        debug_assert!(shape.mr <= MAX_MR && shape.nr <= MAX_NR);
        let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
        if !first {
            for (ir, accr) in acc.iter_mut().enumerate().take(shape.mr) {
                for (jr, accv) in accr.iter_mut().enumerate().take(shape.nr) {
                    *accv = *c.add(ir * stride + jr);
                }
            }
        }
        let steps = ablk.len() / shape.lane_mr;
        for kk in 0..steps {
            let af = &ablk[kk * shape.lane_mr..];
            let bf = &bblk[kk * shape.lane_nr..];
            for (ir, accr) in acc.iter_mut().enumerate().take(shape.mr) {
                let av = *af.get_unchecked(ir);
                for (jr, accv) in accr.iter_mut().enumerate().take(shape.nr) {
                    *accv = av.mul_add(*bf.get_unchecked(jr), *accv);
                }
            }
        }
        for (ir, accr) in acc.iter().enumerate().take(shape.mr) {
            for (jr, &accv) in accr.iter().enumerate().take(shape.nr) {
                *c.add(ir * stride + jr) = accv;
            }
        }
    }

    /// Fused saxpy row update for the TCU-SpMM fragment kernel:
    /// `crow[j] += av · brow[j]`.
    ///
    /// # Safety
    /// Requires FMA (verified by `simd_level()` before dispatch).
    #[target_feature(enable = "fma")]
    pub unsafe fn saxpy_fused(av: f32, brow: &[f32], crow: &mut [f32]) {
        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
            *cv = av.mul_add(bv, *cv);
        }
    }
}

/// Stub so non-x86 builds fall back to the portable scalar engine.
#[cfg(not(target_arch = "x86_64"))]
mod x86 {
    pub const AVX512_MR: usize = super::MR;
    pub const AVX512_NR: usize = super::NR;
    pub const AVX2_MR: usize = super::MR;
    pub const AVX2_NR: usize = super::NR;
}

/// One row-step of a TCU-SpMM 16×16 fragment multiply:
/// `crow[j] += av · brow[j]` for every j, using the same fused (SIMD
/// tiers) or unfused (scalar tier) multiply-add as the dense engine, so
/// `tcu_spmm` accumulates exactly like [`tiled_gemm_bt`] on dense data.
#[inline]
pub(crate) fn spmm_row_mac(level: SimdLevel, av: f32, brow: &[f32], crow: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if level != SimdLevel::Scalar {
        // SAFETY: every non-Scalar level implies the FMA feature,
        // verified at detection time.
        unsafe { x86::saxpy_fused(av, brow, crow) };
        return;
    }
    let _ = level;
    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
        *cv += av * bv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed.wrapping_add(11);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 17) as f32 - 8.0
        };
        DenseMatrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect()).unwrap()
    }

    #[test]
    fn packing_transpose_equivalence() {
        // Packing B's columns must equal packing Bᵀ's rows.
        let b = lcg_matrix(9, 7, 3);
        let bt = b.transpose();
        let via_cols: Vec<f32> = pack_panels(&b, true, NR, |v| v);
        let via_rows: Vec<f32> = pack_panels(&bt, false, NR, |v| v);
        assert_eq!(via_cols, via_rows);
    }

    #[test]
    fn engine_matches_reference_on_edge_tile_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (2, 1, 9),
            (8, 600, 32),
            (9, 1030, 33),
            (40, 64, 100),
        ] {
            let a = lcg_matrix(m, k, m as u64);
            let b = lcg_matrix(k, n, n as u64);
            let c = tiled_gemm(&a, &b, GemmPrecision::Fp32, 1);
            let (expected, _) = crate::reference::gemm(&a, &b, GemmPrecision::Fp32).unwrap();
            assert_eq!(c, expected, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn empty_dimensions_yield_zero_matrices() {
        for &(m, k, n) in &[(0, 4, 3), (4, 0, 3), (4, 3, 0), (0, 0, 0)] {
            let a = DenseMatrix::zeros(m, k);
            let b = DenseMatrix::zeros(k, n);
            let c = tiled_gemm(&a, &b, GemmPrecision::Fp32, 2);
            assert_eq!(c, DenseMatrix::zeros(m, n), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn auto_threads_bypasses_small_work() {
        assert_eq!(auto_threads(8, 8, 8), 1);
        assert!(auto_threads(1024, 1024, 1024) >= 1);
    }

    #[test]
    fn simd_level_reports_consistent_lanes() {
        let level = simd_level();
        let (mr, nr) = level.lanes();
        assert!(mr >= 1 && nr >= 1);
    }

    #[test]
    fn thread_sharding_is_exact_for_every_count() {
        let a = lcg_matrix(37, 19, 5);
        let b = lcg_matrix(23, 19, 6);
        let one = tiled_gemm_bt(&a, &b, GemmPrecision::Fp32, 1);
        for threads in [2, 3, 4, 7, 64] {
            let t = tiled_gemm_bt(&a, &b, GemmPrecision::Fp32, threads);
            assert_eq!(one, t, "threads={threads}");
        }
    }

    #[test]
    fn ctx_variants_match_the_plain_entry_points() {
        use tcudb_types::sync::QueryContext;
        let a = lcg_matrix(9, 1030, 5);
        let b = lcg_matrix(33, 1030, 6);
        let ctx = QueryContext::unbounded();
        let bt = tiled_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 2, &ctx).unwrap();
        assert_eq!(bt, tiled_gemm_bt(&a, &b, GemmPrecision::Fp32, 2));
        let b2 = lcg_matrix(1030, 12, 7);
        let g = tiled_gemm_ctx(&a, &b2, GemmPrecision::Int8, 1, &ctx).unwrap();
        assert_eq!(g, tiled_gemm(&a, &b2, GemmPrecision::Int8, 1));
    }

    #[test]
    fn cancelled_context_stops_the_engine_with_a_typed_error() {
        use tcudb_types::sync::{CancellationToken, QueryContext};
        use tcudb_types::TcuError;
        // k spans several KC blocks so shards actually probe mid-flight.
        let a = lcg_matrix(8, 3 * KC, 1);
        let b = lcg_matrix(8, 3 * KC, 2);
        let token = CancellationToken::new();
        token.cancel();
        let ctx = QueryContext::with_token(token);
        for threads in [1, 4] {
            let err = tiled_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, threads, &ctx).unwrap_err();
            assert!(matches!(err, TcuError::Cancelled(_)), "threads={threads}");
        }
    }

    #[test]
    fn cancel_at_check_sweep_always_yields_cancelled_or_full_result() {
        use tcudb_types::sync::{CancellationToken, QueryContext};
        let a = lcg_matrix(8, 3 * KC, 1);
        let b = lcg_matrix(8, 3 * KC, 2);
        let expected = tiled_gemm_bt(&a, &b, GemmPrecision::Fp32, 1);
        // Learn the probe count, then cancel at every index.
        let probe = CancellationToken::new();
        let ctx = QueryContext::with_token(probe.clone());
        tiled_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 1, &ctx).unwrap();
        let count = probe.checks();
        assert!(count >= 3, "one probe per k block, k = 3*KC");
        for at in 1..=count {
            let token = CancellationToken::new();
            token.cancel_at_check(at);
            let ctx = QueryContext::with_token(token);
            let out = tiled_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 1, &ctx);
            assert!(out.is_err(), "cancel at probe {at} must not complete");
        }
        // Past the last probe: runs to completion, bit-identical.
        let token = CancellationToken::new();
        token.cancel_at_check(count + 1);
        let ctx = QueryContext::with_token(token);
        let out = tiled_gemm_bt_ctx(&a, &b, GemmPrecision::Fp32, 1, &ctx).unwrap();
        assert_eq!(out, expected);
    }
}
