//! Oracle suite: the tiled, packed, multi-threaded kernel engine must be
//! **bit-identical** to the naive reference kernels across all four
//! precisions, awkward shapes (edges smaller than the MR×NR register tile,
//! primes, empty matrices) and 0/1 join-encoded operands — and a run must
//! be byte-for-byte deterministic for every thread count.

use proptest::prelude::*;
use tcudb_tensor::gemm::{gemm_bt_with_threads, gemm_with_threads, GemmPrecision};
use tcudb_tensor::{blocked, reference, spmm, CsrMatrix, DenseMatrix};

const PRECISIONS: [GemmPrecision; 4] = [
    GemmPrecision::Fp32,
    GemmPrecision::Half,
    GemmPrecision::Int8,
    GemmPrecision::Int4,
];

/// Deterministic matrix fill.  `mode 0`: 0/1 join encoding; `mode 1`:
/// small signed integers (exact in every precision's range checks);
/// `mode 2`: signed quarter-steps (stress fp16 rounding and f32
/// accumulation order).
fn lcg_matrix(rows: usize, cols: usize, seed: u64, mode: u64) -> DenseMatrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(97);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let data = (0..rows * cols)
        .map(|_| match mode {
            0 => (next() & 1) as f32,
            1 => ((next() % 19) as f32) - 9.0,
            _ => (((next() % 257) as f32) - 128.0) * 0.25,
        })
        .collect();
    DenseMatrix::from_vec(rows, cols, data).unwrap()
}

fn assert_engine_matches_reference(m: usize, k: usize, n: usize, seed: u64, mode: u64) {
    let a = lcg_matrix(m, k, seed, mode);
    let b = lcg_matrix(k, n, seed + 1, mode);
    let b_t = lcg_matrix(n, k, seed + 2, mode);
    for precision in PRECISIONS {
        let (expected, _) = reference::gemm(&a, &b, precision).unwrap();
        for threads in [1usize, 4] {
            let (tiled, _) = gemm_with_threads(&a, &b, precision, threads).unwrap();
            assert_eq!(
                tiled, expected,
                "gemm {m}x{k}x{n} {precision:?} threads={threads} mode={mode}"
            );
        }
        let (expected_bt, _) = reference::gemm_bt(&a, &b_t, precision).unwrap();
        for threads in [1usize, 4] {
            let (tiled_bt, _) = gemm_bt_with_threads(&a, &b_t, precision, threads).unwrap();
            assert_eq!(
                tiled_bt, expected_bt,
                "gemm_bt {m}x{k}x{n} {precision:?} threads={threads} mode={mode}"
            );
        }
    }
}

#[test]
fn tiled_engine_matches_reference_on_odd_prime_and_empty_shapes() {
    for &(m, k, n) in &[
        (0, 0, 0),
        (0, 3, 2),
        (3, 0, 2),
        (3, 4, 0),
        (1, 1, 1),
        (2, 3, 5),   // everything below one MR×NR register tile
        (7, 11, 13), // primes straddling the tile edges
        (17, 19, 23),
        (1, 64, 1),
        (31, 2, 67),
        (33, 37, 9),
    ] {
        assert_engine_matches_reference(m, k, n, 13 + (m * 1000 + k * 10 + n) as u64, 2);
    }
}

#[test]
fn tiled_engine_exact_on_join_encoded_binary_matrices() {
    // 0/1 one-hot matrices are the §3 join encoding: every precision must
    // agree exactly with the fp32 reference (counts are small integers).
    for &(m, k, n) in &[(5, 33, 7), (16, 16, 16), (19, 40, 3)] {
        let a = lcg_matrix(m, k, 5, 0);
        let b_t = lcg_matrix(n, k, 6, 0);
        let (expected, _) = reference::gemm_bt(&a, &b_t, GemmPrecision::Fp32).unwrap();
        for precision in PRECISIONS {
            let (tiled, _) = gemm_bt_with_threads(&a, &b_t, precision, 2).unwrap();
            assert_eq!(tiled, expected, "binary join {m}x{k}x{n} {precision:?}");
        }
    }
}

#[test]
fn one_thread_and_n_thread_runs_agree_exactly() {
    let a = lcg_matrix(97, 53, 41, 2);
    let b = lcg_matrix(53, 61, 42, 2);
    let b_t = lcg_matrix(61, 53, 43, 2);
    for precision in PRECISIONS {
        let (one, _) = gemm_with_threads(&a, &b, precision, 1).unwrap();
        let (one_bt, _) = gemm_bt_with_threads(&a, &b_t, precision, 1).unwrap();
        for threads in [2, 3, 5, 8, 32] {
            let (many, _) = gemm_with_threads(&a, &b, precision, threads).unwrap();
            assert_eq!(one, many, "{precision:?} threads={threads}");
            let (many_bt, _) = gemm_bt_with_threads(&a, &b_t, precision, threads).unwrap();
            assert_eq!(one_bt, many_bt, "bt {precision:?} threads={threads}");
        }
    }
}

#[test]
fn blocked_and_spmm_agree_with_reference_on_exact_values() {
    // Integer-valued operands: blocked accumulation order and SpMM tile
    // order are exact, so every route must land on the reference result.
    let a = lcg_matrix(37, 29, 7, 1);
    let b = lcg_matrix(29, 31, 8, 1);
    let (expected, _) = reference::gemm(&a, &b, GemmPrecision::Fp32).unwrap();
    for block in [5, 16, 64] {
        let (c, _) = blocked::blocked_gemm(&a, &b, GemmPrecision::Fp32, block).unwrap();
        assert_eq!(c, expected, "blocked block={block}");
    }
    let b_t = b.transpose();
    for precision in PRECISIONS {
        let (expected_p, _) = reference::gemm_bt(&a, &b_t, precision).unwrap();
        let (c, _) = spmm::tcu_spmm(
            &CsrMatrix::from_dense(&a),
            &CsrMatrix::from_dense(&b_t),
            precision,
        )
        .unwrap();
        assert_eq!(c, expected_p, "spmm {precision:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine is bit-identical to the reference oracle for random
    /// shapes, seeds and value modes, in every precision, single- and
    /// multi-threaded.
    #[test]
    fn prop_tiled_engine_is_bit_identical_to_reference(
        m in 0usize..24, k in 0usize..28, n in 0usize..24,
        seed in 0u64..500, mode in 0u64..3
    ) {
        assert_engine_matches_reference(m, k, n, seed, mode);
    }
}
