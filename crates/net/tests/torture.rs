//! Protocol torture suite: deterministic seeded frame fuzzing against a
//! live server.  Truncated frames, corrupted CRCs, oversized length
//! prefixes, mid-frame disconnects, and garbage handshakes must each
//! produce a typed `Error` frame (code 100, `Protocol`) or a clean
//! close — never a hang, a panic, or unbounded buffering — and the
//! server must keep serving correct results afterwards.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use tcudb_core::TcuDb;
use tcudb_datagen::micro;
use tcudb_net::frame::{ErrorCode, VERSION_MIN};
use tcudb_net::{Client, Frame, FrameReader, NetConfig, NetServer, MAGIC, MAX_FRAME_LEN, VERSION};
use tcudb_storage::Table;

/// Reads block for at most this long; hitting the timeout fails the test
/// (the server hung instead of replying or closing).
const TORTURE_TIMEOUT: Duration = Duration::from_secs(5);

struct Fixture {
    server: NetServer,
    /// A known-good statement and its oracle result, used to prove the
    /// server is still healthy after each round of abuse.
    health_sql: String,
    health_expected: Table,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = Arc::new(TcuDb::default());
        db.set_catalog(micro::gen_catalog(&micro::MicroConfig::new(2_000, 512)));
        let (_, sql) = micro::queries()[0];
        let health_sql = sql.to_string();
        let health_expected = db.execute(&health_sql).expect("oracle execution").table;
        let server = NetServer::start(db, NetConfig::default()).expect("server starts");
        Fixture {
            server,
            health_sql,
            health_expected,
        }
    })
}

fn addr() -> SocketAddr {
    fixture().server.local_addr()
}

/// Raw TCP connection with the torture read timeout installed, paired
/// with the [`FrameReader`] that must persist for the stream's lifetime.
fn raw_connect() -> (TcpStream, FrameReader) {
    let stream = TcpStream::connect(addr()).expect("connect");
    stream
        .set_read_timeout(Some(TORTURE_TIMEOUT))
        .expect("set timeout");
    (stream, FrameReader::default())
}

fn hello_bytes() -> Vec<u8> {
    Frame::Hello {
        magic: MAGIC,
        min_version: VERSION_MIN,
        max_version: VERSION,
    }
    .to_bytes()
}

/// Completes a valid handshake on a raw stream and returns the session id.
fn raw_handshake(stream: &mut TcpStream, reader: &mut FrameReader) -> u64 {
    stream.write_all(&hello_bytes()).expect("send hello");
    match read_one_frame(stream, reader) {
        Some(Frame::Welcome { session_id, .. }) => session_id,
        other => panic!("expected Welcome, got {other:?}"),
    }
}

/// Reads exactly one frame, or `None` on clean EOF.  Panics on timeout
/// (hang) or malformed server output.  The reader persists across calls
/// so frames arriving in one TCP segment are not lost.
fn read_one_frame(stream: &mut TcpStream, reader: &mut FrameReader) -> Option<Frame> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = reader.next_frame().expect("server output is well-formed") {
            return Some(frame);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                assert_eq!(reader.buffered(), 0, "server closed mid-frame");
                return None;
            }
            Ok(n) => reader.push_bytes(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server hung: no frame and no close within {TORTURE_TIMEOUT:?}")
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

/// Everything the server said before closing the connection.
#[derive(Debug)]
struct Aftermath {
    frames: Vec<Frame>,
}

impl Aftermath {
    fn protocol_errors(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| matches!(f, Frame::Error { id: 0, code, .. } if *code == ErrorCode::Protocol as u16))
            .count()
    }
}

/// Drains the connection to EOF, asserting the core torture invariants:
/// the server must close (no hang), and every byte it sent must parse as
/// well-formed frames (no torn output).
fn drain_to_eof(stream: &mut TcpStream, reader: &mut FrameReader) -> Aftermath {
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        while let Some(frame) = reader.next_frame().expect("server output is well-formed") {
            frames.push(frame);
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => reader.push_bytes(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!(
                    "server hung: connection neither closed nor errored within \
                     {TORTURE_TIMEOUT:?} (got {frames:?} so far)"
                )
            }
            // The server may RST a connection it already gave up on.
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("read failed: {e}"),
        }
    }
    assert_eq!(
        reader.buffered(),
        0,
        "server closed mid-frame: {} undecoded bytes",
        reader.buffered()
    );
    Aftermath { frames }
}

/// Proves the shared server still computes correct results.
fn assert_server_healthy() {
    let f = fixture();
    let mut client = Client::connect(addr()).expect("healthy connect");
    client
        .set_read_timeout(Some(TORTURE_TIMEOUT))
        .expect("set timeout");
    let got = client.query(&f.health_sql).expect("healthy query");
    assert_eq!(got, f.health_expected, "server corrupted after torture");
    client.goodbye();
}

fn valid_query_bytes(id: u64) -> Vec<u8> {
    Frame::Query {
        id,
        deadline_ms: 0,
        sql: fixture().health_sql.clone(),
    }
    .to_bytes()
}

// ---------------------------------------------------------------------
// Deterministic hostile inputs
// ---------------------------------------------------------------------

#[test]
fn garbage_handshakes_are_rejected_without_hanging() {
    let hostile: Vec<Vec<u8>> = vec![
        // An HTTP request.
        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        // A Hello with the wrong magic.
        Frame::Hello {
            magic: 0xDEAD_BEEF,
            min_version: VERSION_MIN,
            max_version: VERSION,
        }
        .to_bytes(),
        // A Hello demanding a future protocol only.
        Frame::Hello {
            magic: MAGIC,
            min_version: VERSION + 40,
            max_version: VERSION + 41,
        }
        .to_bytes(),
        // A Query before any handshake.
        valid_query_bytes(1),
        // A server-only frame from the client.
        Frame::Welcome {
            version: VERSION,
            session_id: 1,
        }
        .to_bytes(),
        // Pure zeroes: decodes as a zero-length frame with a bad CRC.
        vec![0u8; 64],
    ];
    for (i, bytes) in hostile.iter().enumerate() {
        let (mut stream, mut reader) = raw_connect();
        stream.write_all(bytes).expect("send hostile handshake");
        stream.shutdown(Shutdown::Write).expect("shutdown write");
        let aftermath = drain_to_eof(&mut stream, &mut reader);
        assert!(
            aftermath.protocol_errors() >= 1,
            "hostile handshake #{i} got no typed protocol error: {:?}",
            aftermath.frames
        );
    }
    assert_server_healthy();
}

#[test]
fn oversized_length_prefix_is_rejected_from_the_header_alone() {
    // The length prefix alone announces more than the frame cap; the
    // server must reject after 8 bytes without waiting for (or
    // buffering) a body that large.
    for len in [MAX_FRAME_LEN + 1, u32::MAX] {
        let (mut stream, mut reader) = raw_connect();
        raw_handshake(&mut stream, &mut reader);
        let mut header = Vec::new();
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&header).expect("send oversized header");
        // Deliberately no Shutdown and no body: the rejection must come
        // from the header itself, before any payload arrives.
        let aftermath = drain_to_eof(&mut stream, &mut reader);
        assert_eq!(
            aftermath.protocol_errors(),
            1,
            "oversized len {len} not rejected: {:?}",
            aftermath.frames
        );
    }
    assert_server_healthy();
}

#[test]
fn corrupted_crc_after_valid_traffic_is_a_typed_error() {
    let (mut stream, mut reader) = raw_connect();
    raw_handshake(&mut stream, &mut reader);
    // One valid statement first: the connection is warm and mid-session.
    stream.write_all(&valid_query_bytes(1)).expect("send query");
    loop {
        match read_one_frame(&mut stream, &mut reader) {
            Some(Frame::ResultDone { id: 1, .. }) => break,
            Some(Frame::ResultHeader { .. } | Frame::ResultBatch { .. }) => {}
            other => panic!("expected streamed result, got {other:?}"),
        }
    }
    // Now the same statement with one payload byte flipped: stored CRC
    // no longer matches.
    let mut bytes = valid_query_bytes(2);
    bytes[10] ^= 0x40;
    stream.write_all(&bytes).expect("send corrupted frame");
    let aftermath = drain_to_eof(&mut stream, &mut reader);
    assert_eq!(
        aftermath.protocol_errors(),
        1,
        "corrupt CRC not rejected: {:?}",
        aftermath.frames
    );
    assert_server_healthy();
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    // Dozens of connections die mid-frame at every interesting boundary:
    // inside the length prefix, inside the CRC, on the payload's first
    // byte, one byte short of complete.
    let whole = valid_query_bytes(1);
    let cuts = [1, 3, 5, 8, 9, whole.len() - 1];
    for &cut in &cuts {
        for _ in 0..8 {
            let (mut stream, mut reader) = raw_connect();
            raw_handshake(&mut stream, &mut reader);
            stream.write_all(&whole[..cut]).expect("send prefix");
            stream.shutdown(Shutdown::Both).expect("disconnect");
        }
    }
    // Also: disconnect while a statement is in flight.
    for _ in 0..8 {
        let (mut stream, mut reader) = raw_connect();
        raw_handshake(&mut stream, &mut reader);
        stream.write_all(&valid_query_bytes(1)).expect("send query");
        drop(stream);
    }
    assert_server_healthy();
    // The reactor reaped every torn connection (bounded retries: reaping
    // happens on its thread after our drops).
    let mut active = fixture().server.stats().active;
    for _ in 0..50 {
        if active <= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
        active = fixture().server.stats().active;
    }
    assert!(
        active <= 1,
        "torn connections leaked: {active} still active"
    );
}

// ---------------------------------------------------------------------
// Seeded frame fuzz
// ---------------------------------------------------------------------

/// Applies one seeded mutation to a valid frame stream and returns the
/// hostile byte string plus whether the prefix up to the mutation is
/// still a sequence of valid frames (those may be answered normally).
fn mutate(rng: &mut TestRng, kind: u64) -> Vec<u8> {
    let mut bytes = valid_query_bytes(1);
    match kind {
        // Truncate at a random byte: mid-frame disconnect.
        0 => {
            let cut = 1 + (rng.next_u64() as usize) % (bytes.len() - 1);
            bytes.truncate(cut);
        }
        // Flip one payload byte: CRC mismatch.
        1 => {
            let at = 8 + (rng.next_u64() as usize) % (bytes.len() - 8);
            let bit = 1u8 << (rng.next_u64() % 8) as u8;
            bytes[at] ^= bit;
        }
        // Oversized or lying length prefix.
        2 => {
            let len = MAX_FRAME_LEN.saturating_add(1 + rng.next_u64() as u32 % 1024);
            bytes[..4].copy_from_slice(&len.to_le_bytes());
        }
        // Replace the whole stream with garbage of the same length.
        3 => {
            for b in bytes.iter_mut() {
                *b = rng.next_u64() as u8;
            }
        }
        // Corrupt the header itself (length or CRC field).
        4 => {
            let at = (rng.next_u64() as usize) % 8;
            bytes[at] = bytes[at].wrapping_add(1 + rng.next_u64() as u8 % 254);
        }
        // Valid frame followed by a burst of garbage.
        _ => {
            let tail = 1 + (rng.next_u64() as usize) % 64;
            for _ in 0..tail {
                bytes.push(rng.next_u64() as u8);
            }
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seeded_frame_mutations_never_hang_or_tear_the_server(
        seed in 0u64..u64::MAX,
        kind in 0u64..6,
    ) {
        let mut rng = TestRng::from_seed(seed);
        let hostile = mutate(&mut rng, kind);
        let (mut stream, mut reader) = raw_connect();
        raw_handshake(&mut stream, &mut reader);
        stream.write_all(&hostile).expect("send hostile bytes");
        // Half-close so the server sees EOF even when the mutation looks
        // like an incomplete frame it would otherwise keep waiting for.
        stream.shutdown(Shutdown::Write).expect("shutdown write");
        let aftermath = drain_to_eof(&mut stream, &mut reader);
        // Invariants checked inside drain_to_eof: connection closed
        // within the timeout and all server output framed correctly.
        // Additionally: any Error frames must carry a known typed code.
        for frame in &aftermath.frames {
            if let Frame::Error { code, .. } = frame {
                prop_assert!(
                    *code >= 1,
                    "error frame with unassigned code: {frame:?}"
                );
            }
        }
    }
}

#[test]
fn zz_server_survives_the_whole_suite() {
    // Runs last alphabetically in this binary under the default
    // multi-threaded harness ordering guarantees are weak, so this also
    // re-checks health on its own fresh connection regardless.
    assert_server_healthy();
    let stats = fixture().server.stats();
    assert!(stats.accepted > 0);
}
