//! Pure pipelining/cancellation tests for the connection state machine —
//! no sockets, no threads: bytes in, [`ConnEvent`]s and reply bytes out.
//! Covers the satellite checklist: interleaved partial reads, N queued
//! statements answered in order, a cancel frame aborting an in-flight
//! statement, and write-buffer backpressure transitions.

use tcudb_net::frame::{encode_error, Frame, FrameReader, MAGIC, VERSION, VERSION_MIN};
use tcudb_net::{Conn, ConnConfig, ConnEvent};
use tcudb_types::TcuError;

fn hello_bytes() -> Vec<u8> {
    Frame::Hello {
        magic: MAGIC,
        min_version: VERSION_MIN,
        max_version: VERSION,
    }
    .to_bytes()
}

/// A handshaken connection with the Welcome reply already drained.
fn ready_conn(cfg: ConnConfig) -> Conn {
    let mut conn = Conn::new(1, cfg);
    let events = conn.on_bytes(&hello_bytes());
    assert!(events.is_empty());
    let n = conn.outgoing().len();
    conn.consume(n);
    conn
}

fn query_bytes(id: u64, sql: &str) -> Vec<u8> {
    Frame::Query {
        id,
        deadline_ms: 0,
        sql: sql.to_string(),
    }
    .to_bytes()
}

/// Decode every complete frame currently in the write buffer.
fn drain_replies(conn: &mut Conn) -> Vec<Frame> {
    let mut reader = FrameReader::default();
    reader.push_bytes(conn.outgoing());
    let n = conn.outgoing().len();
    conn.consume(n);
    let mut frames = Vec::new();
    while let Some(f) = reader.next_frame().expect("server output is well-formed") {
        frames.push(f);
    }
    frames
}

fn done_reply(id: u64) -> Vec<u8> {
    Frame::ResultDone { id, rows: 0 }.to_bytes()
}

#[test]
fn interleaved_partial_reads_produce_events_only_at_frame_boundaries() {
    let mut conn = ready_conn(ConnConfig::default());
    let mut bytes = query_bytes(1, "SELECT 1");
    bytes.extend(query_bytes(2, "SELECT 2"));
    // Drip the two frames in one byte at a time: every prefix must be
    // accepted without events until a frame completes.
    let mut seen = Vec::new();
    let first_len = query_bytes(1, "SELECT 1").len();
    for (i, b) in bytes.iter().enumerate() {
        let events = conn.on_bytes(std::slice::from_ref(b));
        for e in &events {
            seen.push((i + 1, e.clone()));
        }
    }
    assert_eq!(
        seen,
        vec![
            (
                first_len,
                ConnEvent::Submit {
                    id: 1,
                    sql: "SELECT 1".into(),
                    deadline_ms: 0
                }
            ),
            (
                bytes.len(),
                ConnEvent::Submit {
                    id: 2,
                    sql: "SELECT 2".into(),
                    deadline_ms: 0
                }
            ),
        ]
    );
}

#[test]
fn pipelined_statements_are_answered_in_submission_order() {
    let mut conn = ready_conn(ConnConfig::default());
    for id in 1..=3u64 {
        let events = conn.on_bytes(&query_bytes(id, &format!("SELECT {id}")));
        assert_eq!(events.len(), 1);
    }
    assert_eq!(conn.in_flight(), vec![1, 2, 3]);
    // Completions arrive out of order: 3, then 2 — nothing may flush
    // while statement 1 is unanswered.
    conn.complete(3, done_reply(3));
    conn.complete(2, done_reply(2));
    assert_eq!(
        conn.outgoing().len(),
        0,
        "replies must wait for statement 1"
    );
    // Statement 1 completes: all three flush, in order 1, 2, 3.
    conn.complete(1, done_reply(1));
    let ids: Vec<u64> = drain_replies(&mut conn)
        .into_iter()
        .map(|f| match f {
            Frame::ResultDone { id, .. } => id,
            other => panic!("unexpected reply {other:?}"),
        })
        .collect();
    assert_eq!(ids, vec![1, 2, 3]);
    assert!(conn.in_flight().is_empty());
}

#[test]
fn cancel_frame_targets_only_in_flight_statements() {
    let mut conn = ready_conn(ConnConfig::default());
    conn.on_bytes(&query_bytes(7, "SELECT 7"));
    // Cancel for the in-flight statement is forwarded.
    let events = conn.on_bytes(&Frame::Cancel { id: 7 }.to_bytes());
    assert_eq!(events, vec![ConnEvent::Cancel { id: 7 }]);
    // Cancel for an unknown statement is silently stale (the race with
    // its own completion is inherent).
    let events = conn.on_bytes(&Frame::Cancel { id: 99 }.to_bytes());
    assert!(events.is_empty());
    // The cancelled statement still gets its (typed) reply.
    conn.complete(7, encode_error(7, &TcuError::Cancelled("test".into())));
    match drain_replies(&mut conn).as_slice() {
        [Frame::Error { id: 7, .. }] => {}
        other => panic!("expected the typed cancel reply, got {other:?}"),
    }
    // A cancel arriving after the reply flushed is stale too.
    let events = conn.on_bytes(&Frame::Cancel { id: 7 }.to_bytes());
    assert!(events.is_empty());
}

#[test]
fn write_buffer_backpressure_toggles_wants_read() {
    let cfg = ConnConfig {
        write_high_watermark: 64,
        ..ConnConfig::default()
    };
    let mut conn = ready_conn(cfg);
    conn.on_bytes(&query_bytes(1, "SELECT 1"));
    assert!(conn.wants_read());
    // A reply bigger than the watermark: the connection must stop
    // reading until the client drains it.
    conn.complete(
        1,
        Frame::Error {
            id: 1,
            code: 4,
            message: "x".repeat(200),
        }
        .to_bytes(),
    );
    assert!(conn.wants_write());
    assert!(
        !conn.wants_read(),
        "reading must pause while the write backlog exceeds the watermark"
    );
    // Drain in two steps: still paused halfway, reading resumes once the
    // backlog falls under the watermark.
    let backlog = conn.buffered_out();
    conn.consume(backlog - 100);
    assert!(!conn.wants_read());
    conn.consume(100);
    assert!(conn.wants_read());
    assert!(!conn.wants_write());
}

#[test]
fn pipeline_cap_defers_frames_until_completions_drain() {
    let cfg = ConnConfig {
        max_pipeline: 2,
        ..ConnConfig::default()
    };
    let mut conn = ready_conn(cfg);
    let mut bytes = Vec::new();
    for id in 1..=4u64 {
        bytes.extend(query_bytes(id, &format!("SELECT {id}")));
    }
    // Only the first two submit; the rest stay buffered behind the cap.
    let events = conn.on_bytes(&bytes);
    assert_eq!(events.len(), 2);
    assert!(!conn.wants_read(), "pipeline full: stop reading");
    // Completing statement 1 frees a slot; resume() picks up statement 3.
    conn.complete(1, done_reply(1));
    let events = conn.resume();
    assert_eq!(
        events,
        vec![ConnEvent::Submit {
            id: 3,
            sql: "SELECT 3".into(),
            deadline_ms: 0
        }]
    );
    conn.complete(2, done_reply(2));
    let events = conn.resume();
    assert_eq!(events.len(), 1, "statement 4 follows");
    assert_eq!(conn.in_flight(), vec![3, 4]);
}

#[test]
fn duplicate_statement_id_is_a_protocol_error() {
    let mut conn = ready_conn(ConnConfig::default());
    conn.on_bytes(&query_bytes(5, "SELECT 5"));
    let events = conn.on_bytes(&query_bytes(5, "SELECT 5"));
    assert!(events.is_empty());
    assert!(conn.is_closing());
    match drain_replies(&mut conn).as_slice() {
        [Frame::Error {
            id: 0, code: 100, ..
        }] => {}
        other => panic!("expected connection-level protocol error, got {other:?}"),
    }
}

#[test]
fn goodbye_cancels_in_flight_and_closes_after_flush() {
    let mut conn = ready_conn(ConnConfig::default());
    conn.on_bytes(&query_bytes(1, "SELECT 1"));
    let events = conn.on_bytes(
        &Frame::Goodbye {
            reason: "done".into(),
        }
        .to_bytes(),
    );
    assert_eq!(events, vec![ConnEvent::CancelAll]);
    assert!(conn.is_closing());
    assert!(!conn.wants_read());
    // Late completion for the abandoned statement is dropped silently.
    conn.complete(1, done_reply(1));
    assert!(conn.can_drop(), "nothing left to flush");
}

#[test]
fn prepare_execute_roundtrip_through_the_state_machine() {
    let mut conn = ready_conn(ConnConfig::default());
    let events = conn.on_bytes(
        &Frame::Prepare {
            id: 1,
            sql: "SELECT A.x FROM A".into(),
        }
        .to_bytes(),
    );
    assert_eq!(
        events,
        vec![ConnEvent::Prepare {
            id: 1,
            sql: "SELECT A.x FROM A".into()
        }]
    );
    conn.finish_prepare(1, "SELECT A.x FROM A".into(), Ok(()));
    let statement = match drain_replies(&mut conn).as_slice() {
        [Frame::Prepared { id: 1, statement }] => *statement,
        other => panic!("expected Prepared, got {other:?}"),
    };
    // Executing the handle resolves back to the original SQL.
    let events = conn.on_bytes(
        &Frame::ExecutePrepared {
            id: 2,
            statement,
            deadline_ms: 250,
        }
        .to_bytes(),
    );
    assert_eq!(
        events,
        vec![ConnEvent::Submit {
            id: 2,
            sql: "SELECT A.x FROM A".into(),
            deadline_ms: 250
        }]
    );
    // An unknown handle is answered locally with a typed error, in order.
    let events = conn.on_bytes(
        &Frame::ExecutePrepared {
            id: 3,
            statement: 999,
            deadline_ms: 0,
        }
        .to_bytes(),
    );
    assert!(events.is_empty());
    assert_eq!(conn.outgoing().len(), 0, "reply 3 must wait behind 2");
    conn.complete(2, done_reply(2));
    match drain_replies(&mut conn).as_slice() {
        [Frame::ResultDone { id: 2, .. }, Frame::Error { id: 3, code, .. }] => {
            assert_eq!(*code, 13, "InvalidArgument");
        }
        other => panic!("expected ordered replies for 2 then 3, got {other:?}"),
    }
    // A failed prepare surfaces the validation error, typed.
    let events = conn.on_bytes(
        &Frame::Prepare {
            id: 4,
            sql: "SELEKT".into(),
        }
        .to_bytes(),
    );
    assert_eq!(events.len(), 1);
    conn.finish_prepare(4, "SELEKT".into(), Err(TcuError::Parse("nope".into())));
    match drain_replies(&mut conn).as_slice() {
        [Frame::Error { id: 4, code: 1, .. }] => {}
        other => panic!("expected Parse error reply, got {other:?}"),
    }
}
