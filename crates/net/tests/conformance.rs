//! Conformance oracle: every statement in the SSB + micro corpus
//! executed over a TCP socket must come back **byte-identical** to the
//! in-process `TcuDb::execute` result — under 1 connection and under 64
//! concurrent connections — and error paths must map onto their typed
//! frames (shed → `Overloaded`, deadline → `DeadlineExceeded`, parse →
//! `Parse`).

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use tcudb_core::TcuDb;
use tcudb_datagen::{micro, ssb};
use tcudb_net::{Client, NetConfig, NetServer};
use tcudb_serve::ServeConfig;
use tcudb_storage::{Catalog, Table};
use tcudb_types::TcuError;

struct Fixture {
    db: Arc<TcuDb>,
    server: NetServer,
    /// `(name, sql, expected table)` for the whole corpus.
    corpus: Vec<(String, String, Table)>,
}

/// One shared engine + server + oracle for the whole test binary: the
/// corpus runs once in-process and every socket result is compared
/// against it.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ssb_cat = ssb::gen_catalog(1, 0x55B);
        let micro_cat = micro::gen_catalog(&micro::MicroConfig::new(10_000, 4_096));
        let mut cat = Catalog::new();
        for source in [&ssb_cat, &micro_cat] {
            for name in source.table_names() {
                cat.register((*source.table(&name).unwrap()).clone());
            }
        }
        let db = Arc::new(TcuDb::default());
        db.set_catalog(cat);

        let mut corpus = Vec::new();
        for (name, sql) in ssb::queries() {
            let expected = db.execute(&sql).expect("in-process execution").table;
            corpus.push((format!("ssb/{name}"), sql, expected));
        }
        for (name, sql) in micro::queries() {
            let expected = db.execute(sql).expect("in-process execution").table;
            corpus.push((format!("micro/{name}"), sql.to_string(), expected));
        }

        let server =
            NetServer::start(Arc::clone(&db), NetConfig::default()).expect("server starts");
        Fixture { db, server, corpus }
    })
}

fn connect(f: &Fixture) -> Client {
    let client = Client::connect(f.server.local_addr()).expect("client connects");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    client
}

#[test]
fn corpus_over_one_connection_is_byte_identical() {
    let f = fixture();
    let mut client = connect(f);
    for (name, sql, expected) in &f.corpus {
        let got = client.query(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&got, expected, "{name}: socket result diverged");
    }
    client.goodbye();
}

#[test]
fn corpus_prepared_over_socket_is_byte_identical() {
    let f = fixture();
    let mut client = connect(f);
    for (name, sql, expected) in &f.corpus {
        let handle = client
            .prepare(sql)
            .unwrap_or_else(|e| panic!("{name}: prepare: {e}"));
        let got = client
            .execute_prepared(handle, None)
            .unwrap_or_else(|e| panic!("{name}: execute prepared: {e}"));
        assert_eq!(&got, expected, "{name}: prepared socket result diverged");
        // Handles are reusable.
        let again = client
            .execute_prepared(handle, None)
            .unwrap_or_else(|e| panic!("{name}: re-execute prepared: {e}"));
        assert_eq!(
            &again, expected,
            "{name}: repeated prepared execution diverged"
        );
    }
    client.goodbye();
}

#[test]
fn corpus_under_64_concurrent_connections_is_byte_identical() {
    let f = fixture();
    let n_conns = 64;
    // Every connection runs a rotated slice of the corpus so all queries
    // execute while 64 connections are simultaneously open.
    std::thread::scope(|s| {
        for c in 0..n_conns {
            s.spawn(move || {
                let mut client = connect(f);
                for k in 0..4 {
                    let (name, sql, expected) = &f.corpus[(c + k * 17) % f.corpus.len()];
                    let got = client
                        .query(sql)
                        .unwrap_or_else(|e| panic!("conn {c} {name}: {e}"));
                    assert_eq!(&got, expected, "conn {c} {name}: socket result diverged");
                }
                client.goodbye();
            });
        }
    });
    assert!(f.server.stats().accepted >= n_conns as u64);
}

#[test]
fn pipelined_statements_come_back_in_order_and_identical() {
    let f = fixture();
    let mut client = connect(f);
    // Fire 12 statements before reading any reply.
    let picks: Vec<usize> = (0..12).map(|i| (i * 5) % f.corpus.len()).collect();
    let mut ids = Vec::new();
    for &p in &picks {
        ids.push(client.send_query(&f.corpus[p].1, None).expect("send"));
    }
    for (i, &p) in picks.iter().enumerate() {
        let (id, result) = client.recv_reply().expect("recv");
        assert_eq!(id, ids[i], "replies must arrive in submission order");
        let got = result.unwrap_or_else(|e| panic!("{}: {e}", f.corpus[p].0));
        assert_eq!(
            &got, &f.corpus[p].2,
            "{}: pipelined result diverged",
            f.corpus[p].0
        );
    }
    client.goodbye();
}

#[test]
fn parse_errors_come_back_as_typed_parse_frames() {
    let f = fixture();
    let mut client = connect(f);
    match client.query("SELEKT definitely not sql") {
        Err(TcuError::Parse(_)) => {}
        other => panic!("expected a typed Parse error over the socket, got {other:?}"),
    }
    // The connection survives a statement error.
    let (name, sql, expected) = &f.corpus[0];
    let got = client.query(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(&got, expected);
    client.goodbye();
}

#[test]
fn expired_deadline_comes_back_as_typed_deadline_frame() {
    let f = fixture();
    // A dedicated server whose default deadline is already expired at
    // submit: deterministic DeadlineExceeded for any statement.
    let server = NetServer::start(
        Arc::clone(&f.db),
        NetConfig {
            serve: ServeConfig {
                default_deadline: Some(Duration::from_secs(0)),
                ..ServeConfig::with_workers(2)
            },
            ..NetConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    match client.query(&f.corpus[0].1) {
        Err(TcuError::DeadlineExceeded(_)) => {}
        other => panic!("expected a typed DeadlineExceeded frame, got {other:?}"),
    }
    client.goodbye();
    server.shutdown().expect("shutdown");
}

#[test]
fn shed_statements_come_back_as_typed_overloaded_frames() {
    let f = fixture();
    // One worker, a one-entry queue, no coalescing: a pipelined burst of
    // distinct statements must shed.  Retry the burst a few times in
    // case the worker drains a round implausibly fast.
    let server = NetServer::start(
        Arc::clone(&f.db),
        NetConfig {
            serve: ServeConfig {
                coalesce: false,
                max_queue: 1,
                ..ServeConfig::with_workers(1)
            },
            ..NetConfig::default()
        },
    )
    .expect("server starts");
    let mut shed_seen = 0u64;
    for round in 0..10 {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("set timeout");
        // Distinct statements (rotated corpus slice) fired back-to-back.
        let mut picks = Vec::new();
        for i in 0..24 {
            let p = (round * 7 + i) % f.corpus.len();
            picks.push(p);
            client.send_query(&f.corpus[p].1, None).expect("send");
        }
        for &p in &picks {
            let (_, result) = client.recv_reply().expect("recv");
            match result {
                Ok(got) => assert_eq!(
                    &got, &f.corpus[p].2,
                    "{}: admitted result diverged under overload",
                    f.corpus[p].0
                ),
                Err(TcuError::Overloaded(_)) => shed_seen += 1,
                Err(e) => panic!("{}: unexpected error kind under flood: {e}", f.corpus[p].0),
            }
        }
        client.goodbye();
        if shed_seen > 0 {
            break;
        }
    }
    assert!(
        shed_seen > 0,
        "a 24-statement pipelined burst against a 1-worker/1-queue server never shed"
    );
    server.shutdown().expect("shutdown");
}
