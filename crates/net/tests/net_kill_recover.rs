//! Socket-level kill-and-recover: concurrent TCP clients stream queries
//! against a durable on-disk engine while a writer commits through the
//! engine handle; the network server is killed SIGKILL-style mid-stream
//! (sockets dropped, workers stopped, NO checkpoint).  Clients must see
//! clean typed errors or disconnects — never hangs or torn frames — and
//! a reopen from disk must land every acknowledged write.  A second pass
//! restarts a server on the recovered engine and shuts down gracefully,
//! proving the checkpoint seals the WAL.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcudb_core::{EngineConfig, TcuDb};
use tcudb_net::{Client, NetConfig, NetServer};
use tcudb_storage::{DurabilityOptions, Table};
use tcudb_types::Value;

/// A unique on-disk scratch directory (no tempdir dependency).
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "tcudb-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_db(dir: &std::path::Path) -> TcuDb {
    TcuDb::open_with(
        dir,
        EngineConfig::default(),
        DurabilityOptions::strict_manual(),
    )
    .expect("open durable db")
}

fn acked_ids(db: &TcuDb) -> Vec<i64> {
    db.snapshot()
        .table("B")
        .unwrap()
        .column_by_name("id")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec()
}

/// No single socket operation may take longer than this; the kill must
/// surface as a prompt error/EOF, not a stall.
const STALL_BOUND: Duration = Duration::from_secs(10);

#[test]
fn killed_socket_server_loses_no_acked_write_and_drops_clients_cleanly() {
    let scratch = ScratchDir::new("net-kill-recover");
    let db = Arc::new(open_db(&scratch.0));
    db.try_register_table(
        Table::from_int_columns("A", &[("id", vec![1, 2, 3]), ("val", vec![10, 20, 30])]).unwrap(),
    )
    .unwrap();
    db.try_register_table(
        Table::from_int_columns("B", &[("id", vec![]), ("val", vec![])]).unwrap(),
    )
    .unwrap();

    let server = NetServer::start(Arc::clone(&db), NetConfig::default()).expect("server starts");
    let addr = server.local_addr();
    let sql = "SELECT SUM(A.val), B.val FROM A, B WHERE A.id = B.id GROUP BY B.val";

    // Three TCP clients hammer the server over sockets while the writer
    // appends commits through the engine handle, recording the epoch of
    // each acknowledgement.  At id == 20 the server is killed: reactor
    // drops every socket without a Goodbye and the serve workers stop
    // without a checkpoint — the network analogue of SIGKILL.
    let mut server = Some(server);
    let mut acked: Vec<(i64, u64)> = Vec::new();
    let stop = AtomicBool::new(false);
    let queries_ok = AtomicU64::new(0);
    // All clients are connected and mid-stream before the writer starts,
    // so the kill cuts live connections rather than racing the connects.
    let ready = std::sync::Barrier::new(4);
    std::thread::scope(|s| {
        let stop = &stop;
        let queries_ok = &queries_ok;
        let ready = &ready;
        for c in 0..3 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("set timeout");
                ready.wait();
                loop {
                    let began = Instant::now();
                    match client.query(sql) {
                        Ok(_) => {
                            queries_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // The kill must be visible promptly as a
                            // typed error or disconnect — a cut client
                            // may never stall.
                            assert!(
                                began.elapsed() < STALL_BOUND,
                                "conn {c}: query stalled {:?} before failing: {e}",
                                began.elapsed()
                            );
                            break;
                        }
                    }
                    assert!(
                        began.elapsed() < STALL_BOUND,
                        "conn {c}: query took {:?} on a live server",
                        began.elapsed()
                    );
                    if stop.load(Ordering::Relaxed) {
                        // Server already killed but this connection kept
                        // winning races — one more round will error out.
                        continue;
                    }
                }
                // The listener is gone too: a reconnect must be refused
                // promptly, not accepted into a dead server.
                assert!(stop.load(Ordering::Relaxed), "client died before the kill");
                let began = Instant::now();
                assert!(
                    Client::connect(addr).is_err(),
                    "conn {c}: reconnected to a killed server"
                );
                assert!(began.elapsed() < STALL_BOUND);
            });
        }
        ready.wait();
        for id in 0..40i64 {
            db.append_rows("B", vec![vec![Value::Int(id), Value::Int(1000 + id)]])
                .expect("acked write");
            acked.push((id, db.epoch()));
            if id == 20 {
                // Let the clients get some real traffic through first.
                let began = Instant::now();
                while queries_ok.load(Ordering::Relaxed) < 3 && began.elapsed() < STALL_BOUND {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
                if let Some(server) = server.take() {
                    server.kill(); // SIGKILL-style: sockets dropped, no checkpoint
                }
            }
        }
    });
    assert!(
        queries_ok.load(Ordering::Relaxed) > 0,
        "no client query ever succeeded before the kill"
    );

    let last_epoch = acked.last().unwrap().1;
    drop(db);

    // Reopen from disk: every acknowledged id must be present and the
    // recovered epoch must cover the last acknowledgement.
    let db = open_db(&scratch.0);
    let report = db.recovery_report().unwrap();
    assert!(
        report.recovered_epoch >= last_epoch,
        "recovered epoch {} < last acked epoch {last_epoch}",
        report.recovered_epoch
    );
    let ids = acked_ids(&db);
    for (id, epoch) in &acked {
        assert!(
            ids.contains(id),
            "acked write id={id} (epoch {epoch}) missing after recovery"
        );
    }
    assert_eq!(ids.len(), 40, "duplicate or phantom rows after recovery");

    // Restart: a fresh server over the recovered engine serves sockets
    // again, then shuts down gracefully — which checkpoints, so the next
    // reopen replays nothing.
    let db = Arc::new(db);
    let server = NetServer::start(Arc::clone(&db), NetConfig::default()).expect("restart");
    let mut client = Client::connect(server.local_addr()).expect("connect after restart");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    for id in 40..50i64 {
        db.append_rows("B", vec![vec![Value::Int(id), Value::Int(1000 + id)]])
            .unwrap();
        let table = client.query(sql).expect("query after restart");
        assert!(table.num_rows() > 0);
    }
    client.goodbye();
    let stats = server.shutdown().expect("graceful shutdown");
    let sealed = stats
        .checkpoint_epoch
        .expect("graceful shutdown checkpoints");
    assert_eq!(sealed, db.epoch());
    drop(db);

    let db = open_db(&scratch.0);
    let report = db.recovery_report().unwrap();
    assert_eq!(report.manifest_epoch, sealed);
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(acked_ids(&db).len(), 50);
}
