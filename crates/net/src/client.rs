//! A small blocking client for the TCUP protocol — what the test suites
//! and `perfserve`'s socket mode speak.  One [`Client`] owns one
//! connection; pipelining is explicit: [`Client::send_query`] fires a
//! statement without waiting, [`Client::recv_reply`] collects the next
//! reply in submission order, and the convenience [`Client::query`] does
//! one round trip.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tcudb_storage::Table;
use tcudb_types::{TcuError, TcuResult};

use crate::frame::{
    ErrorCode, Frame, FrameReader, ProtocolError, ResultAssembler, MAGIC, VERSION, VERSION_MIN,
};

fn io_err(context: &str, e: std::io::Error) -> TcuError {
    TcuError::Io(format!("{context}: {e}"))
}

/// A blocking TCUP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    session_id: u64,
}

impl Client {
    /// Connect and complete the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> TcuResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            reader: FrameReader::default(),
            next_id: 1,
            session_id: 0,
        };
        client.send(&Frame::Hello {
            magic: MAGIC,
            min_version: VERSION_MIN,
            max_version: VERSION,
        })?;
        match client.read_frame()? {
            Frame::Welcome { session_id, .. } => {
                client.session_id = session_id;
                Ok(client)
            }
            Frame::Error { code, message, .. } => Err(ErrorCode::from_u16(code).to_error(message)),
            other => Err(ProtocolError(format!("expected Welcome, server sent {other:?}")).into()),
        }
    }

    /// The server-assigned connection id from the handshake.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Bound how long [`Client::recv_reply`] blocks on a silent server
    /// (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> TcuResult<()> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| io_err("set read timeout", e))
    }

    // -- pipelined interface --------------------------------------------

    /// Fire a query without waiting; returns its statement id.  Any
    /// number may be in flight — replies arrive in submission order via
    /// [`Client::recv_reply`].
    pub fn send_query(&mut self, sql: &str, deadline: Option<Duration>) -> TcuResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Query {
            id,
            deadline_ms: deadline_ms(deadline),
            sql: sql.to_string(),
        })?;
        Ok(id)
    }

    /// Ask the server to abort in-flight statement `id`.  Its reply
    /// still arrives — the result or a typed `Cancelled` error; the race
    /// is inherent.
    pub fn send_cancel(&mut self, id: u64) -> TcuResult<()> {
        self.send(&Frame::Cancel { id })
    }

    /// Collect the next reply in submission order: `(statement id,
    /// result table or typed error)`.
    pub fn recv_reply(&mut self) -> TcuResult<(u64, TcuResult<Table>)> {
        let (id, first) = match self.read_frame()? {
            Frame::ResultHeader { id, name, columns } => (id, ResultAssembler::new(name, columns)),
            Frame::Error {
                id: 0,
                code,
                message,
            } => {
                // Connection-level failure: surface directly.
                return Err(ErrorCode::from_u16(code).to_error(message));
            }
            Frame::Error { id, code, message } => {
                return Ok((id, Err(ErrorCode::from_u16(code).to_error(message))));
            }
            Frame::Prepared { id, statement } => {
                // Prepared acks flow through the same ordered stream;
                // encode the handle as a pseudo-error for callers that
                // mix prepare into the pipeline via `send`.  The typed
                // [`Client::prepare`] API intercepts this first.
                return Ok((
                    id,
                    Err(TcuError::InvalidArgument(format!(
                        "statement {id} answered with prepared handle {statement}"
                    ))),
                ));
            }
            Frame::Goodbye { reason } => {
                return Err(TcuError::Io(format!(
                    "server closed the connection: {reason}"
                )));
            }
            other => {
                return Err(ProtocolError(format!(
                    "unexpected frame while awaiting a reply: {other:?}"
                ))
                .into())
            }
        };
        let mut asm = first;
        loop {
            match self.read_frame()? {
                Frame::ResultBatch { id: bid, columns } if bid == id => {
                    asm.push_batch(columns)?;
                }
                Frame::ResultDone { id: did, rows } if did == id => {
                    return Ok((id, asm.finish(rows)));
                }
                Frame::Error {
                    id: eid,
                    code,
                    message,
                } if eid == id => {
                    return Ok((id, Err(ErrorCode::from_u16(code).to_error(message))));
                }
                other => {
                    return Err(ProtocolError(format!(
                        "result stream for statement {id} interleaved with {other:?}"
                    ))
                    .into())
                }
            }
        }
    }

    // -- one-shot convenience -------------------------------------------

    /// One blocking round trip: submit `sql`, wait for its table.
    pub fn query(&mut self, sql: &str) -> TcuResult<Table> {
        self.query_with_deadline(sql, None)
    }

    /// One blocking round trip with an explicit server-side deadline.
    pub fn query_with_deadline(
        &mut self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> TcuResult<Table> {
        let id = self.send_query(sql, deadline)?;
        let (got, result) = self.recv_reply()?;
        if got != id {
            return Err(
                ProtocolError(format!("reply for statement {got} while awaiting {id}")).into(),
            );
        }
        result
    }

    /// Validate `sql` server-side and bind it to a connection-scoped
    /// handle for [`Client::execute_prepared`].
    pub fn prepare(&mut self, sql: &str) -> TcuResult<u32> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Prepare {
            id,
            sql: sql.to_string(),
        })?;
        match self.read_frame()? {
            Frame::Prepared { id: got, statement } if got == id => Ok(statement),
            Frame::Error { code, message, .. } => Err(ErrorCode::from_u16(code).to_error(message)),
            other => Err(ProtocolError(format!("expected Prepared, server sent {other:?}")).into()),
        }
    }

    /// Execute a prepared handle and wait for its table.
    pub fn execute_prepared(
        &mut self,
        statement: u32,
        deadline: Option<Duration>,
    ) -> TcuResult<Table> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::ExecutePrepared {
            id,
            statement,
            deadline_ms: deadline_ms(deadline),
        })?;
        let (got, result) = self.recv_reply()?;
        if got != id {
            return Err(
                ProtocolError(format!("reply for statement {got} while awaiting {id}")).into(),
            );
        }
        result
    }

    /// Orderly close: send `Goodbye` and drop the connection.
    pub fn goodbye(mut self) {
        let _ = self.send(&Frame::Goodbye {
            reason: "client done".to_string(),
        });
    }

    // -- plumbing -------------------------------------------------------

    fn send(&mut self, frame: &Frame) -> TcuResult<()> {
        self.stream
            .write_all(&frame.to_bytes())
            .map_err(|e| io_err("write frame", e))
    }

    fn read_frame(&mut self) -> TcuResult<Frame> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(frame);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(TcuError::Io(
                        "server closed the connection mid-stream".to_string(),
                    ))
                }
                Ok(n) => self.reader.push_bytes(buf.get(..n).unwrap_or(&[])),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err("read frame", e)),
            }
        }
    }
}

fn deadline_ms(deadline: Option<Duration>) -> u32 {
    deadline
        .map(|d| d.as_millis().min(u32::MAX as u128) as u32)
        .unwrap_or(0)
}
