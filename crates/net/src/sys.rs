//! Thin wrappers over the Linux `epoll` and `eventfd` syscalls.
//!
//! This is the **only** module in the workspace's network stack that
//! contains `unsafe` code, and it is deliberately minimal: four
//! `extern "C"` declarations (the symbols come from the C library the
//! Rust standard library already links — no new dependency), a
//! `#[repr(C)]` event struct, and safe RAII types ([`Epoll`],
//! [`EventFd`]) whose file descriptors are owned by
//! [`std::os::fd::OwnedFd`] and closed on drop.  Everything above this
//! module — the reactor, connection state machines, the protocol — is
//! `#![deny(unsafe_code)]`-clean, and the workspace unsafe audit
//! (`tcudb-analyze`) pins its allowlist to exactly this file.
//!
//! The reactor uses *level-triggered* epoll: sockets are registered
//! non-blocking (via the safe `std` API) and re-reported while readable
//! or writable, so a short read/write never strands a connection.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};

/// Readable interest (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`); requested so half-closed
/// connections are torn down promptly instead of idling out.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`.  On x86-64 the kernel ABI packs
/// the 12-byte struct (no padding between `events` and `data`), which
/// `repr(C, packed)` reproduces; other architectures use natural
/// alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN | ...`).
    pub events: u32,
    /// The caller's token, round-tripped verbatim by the kernel.
    pub data: u64,
}

/// The kernel's `struct epoll_event` (naturally aligned ABI).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN | ...`).
    pub events: u32,
    /// The caller's token, round-tripped verbatim by the kernel.
    pub data: u64,
}

// These symbols are provided by the C library that std already links on
// Linux; declaring them adds no dependency.  Signatures match the
// glibc/musl prototypes.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a new close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; it returns a fresh fd
        // or -1, which we check before claiming ownership.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the kernel just returned `fd` as a brand-new open
        // descriptor that nothing else owns, so transferring it into an
        // OwnedFd (which will close it exactly once) is sound.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a live, properly-initialized repr(C) value on
        // our stack for the duration of the call; the kernel only reads
        // it (and ignores it entirely for EPOLL_CTL_DEL).
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask / token of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (`-1` = forever) for ready events,
    /// filling `events` (cleared first, at most `max` entries).  Returns
    /// the number of ready events; `EINTR` is retried internally.
    pub fn wait(
        &self,
        events: &mut Vec<EpollEvent>,
        max: usize,
        timeout_ms: i32,
    ) -> io::Result<usize> {
        events.clear();
        events.resize(max.max(1), EpollEvent::default());
        loop {
            // SAFETY: `events` points at `events.len()` initialized,
            // writable EpollEvent slots, and we pass exactly that
            // capacity as `maxevents`, so the kernel cannot write out of
            // bounds.
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = rc as usize;
            events.truncate(n);
            return Ok(n);
        }
    }
}

/// An owned `eventfd`, used to wake the reactor from worker threads when
/// a query completion is queued.  Reads and writes go through the safe
/// `&File` I/O impls; only creation touches `unsafe`.
#[derive(Debug)]
pub struct EventFd {
    file: File,
}

impl EventFd {
    /// Create a non-blocking close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes no pointers; it returns a fresh fd or
        // -1, which we check before claiming ownership.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the kernel just returned `fd` as a brand-new open
        // descriptor that nothing else owns; File will close it exactly
        // once on drop.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(EventFd { file })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Bump the counter, waking any epoll waiting on this fd.  Safe to
    /// call from any thread.
    pub fn signal(&self) -> io::Result<()> {
        loop {
            match (&self.file).write(&1u64.to_le_bytes()) {
                Ok(_) => return Ok(()),
                // Counter saturated: the fd is already readable, the
                // wake-up is already pending — mission accomplished.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reset the counter so the fd stops reporting readable.
    pub fn drain(&self) -> io::Result<()> {
        let mut buf = [0u8; 8];
        loop {
            match (&self.file).read(&mut buf) {
                Ok(_) => return Ok(()),
                // Nothing pending: already drained.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_resets() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 77).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait reports no events.
        assert_eq!(ep.wait(&mut events, 8, 0).unwrap(), 0);
        ev.signal().unwrap();
        ev.signal().unwrap(); // coalesces into one readable state
        assert_eq!(ep.wait(&mut events, 8, 100).unwrap(), 1);
        let got = events.first().copied().unwrap();
        assert_eq!({ got.data }, 77);
        assert_ne!({ got.events } & EPOLLIN, 0);
        ev.drain().unwrap();
        assert_eq!(ep.wait(&mut events, 8, 0).unwrap(), 0);
        // Drain when empty is a no-op, not an error.
        ev.drain().unwrap();
    }

    #[test]
    fn epoll_tracks_socket_readiness_and_modify_delete() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        // A fresh connected socket is writable but not readable.
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLOUT, 5).unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 8, 100).unwrap(), 1);
        let got = events.first().copied().unwrap();
        assert_ne!({ got.events } & EPOLLOUT, 0);
        assert_eq!({ got.events } & EPOLLIN, 0);
        // After the peer writes, EPOLLIN is reported.
        (&client).write_all(b"ping").unwrap();
        ep.modify(server.as_raw_fd(), EPOLLIN, 5).unwrap();
        assert_eq!(ep.wait(&mut events, 8, 1000).unwrap(), 1);
        let got = events.first().copied().unwrap();
        assert_ne!({ got.events } & EPOLLIN, 0);
        // Deleted fds stop reporting.
        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 8, 0).unwrap(), 0);
    }
}
