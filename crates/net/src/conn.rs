//! The per-connection protocol state machine — **pure**: no sockets, no
//! threads, no clocks.  The reactor owns the `TcpStream` and the epoll
//! registration; this type owns everything decidable from bytes alone:
//!
//! * the handshake (magic check, version negotiation),
//! * incremental frame decoding across arbitrary read boundaries,
//! * pipelining: any number of in-flight statements per connection,
//!   answered **strictly in submission order** even when the engine
//!   completes them out of order,
//! * prepared-statement handles (connection-scoped `u32` → SQL),
//! * write-buffer accounting and the backpressure signal
//!   ([`Conn::wants_read`] goes false while the peer isn't draining
//!   replies or has [`ConnConfig::max_pipeline`] statements in flight),
//! * typed protocol-error replies followed by an orderly close.
//!
//! Being pure makes the tricky parts — interleaved partial reads,
//! out-of-order completions, cancel races, backpressure transitions —
//! unit-testable without a socket in sight (`tests/conn_machine.rs`).

use std::collections::{HashMap, VecDeque};
use tcudb_types::TcuError;

use crate::frame::{
    encode_error, ErrorCode, Frame, FrameReader, MAGIC, MAX_FRAME_LEN, VERSION, VERSION_MIN,
};

/// Tunables for one connection's state machine.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Per-frame payload ceiling (bytes) enforced while decoding.
    pub max_frame_len: u32,
    /// Stop reading from the socket while this many reply bytes are
    /// buffered and undrained — backpressure propagates to the client's
    /// TCP window instead of growing server memory.
    pub write_high_watermark: usize,
    /// Maximum statements in flight (submitted, not yet answered) per
    /// connection; beyond it the connection stops being read.
    pub max_pipeline: usize,
}

impl Default for ConnConfig {
    fn default() -> ConnConfig {
        ConnConfig {
            max_frame_len: MAX_FRAME_LEN,
            write_high_watermark: 1 << 20,
            max_pipeline: 128,
        }
    }
}

/// An action the state machine asks its driver (the reactor) to perform.
/// Everything that needs the engine, a clock, or a thread crosses this
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnEvent {
    /// Submit `sql` to the serving layer; the reply must later be
    /// delivered via [`Conn::complete`] under `id`.
    Submit {
        /// Client-chosen statement id.
        id: u64,
        /// The SQL text (resolved from the handle for
        /// execute-prepared).
        sql: String,
        /// Client deadline in ms (`0` = server default).
        deadline_ms: u32,
    },
    /// Validate `sql` for a prepare; answer via [`Conn::finish_prepare`]
    /// under `id`.
    Prepare {
        /// Client-chosen statement id.
        id: u64,
        /// The SQL text to validate and bind to a handle.
        sql: String,
    },
    /// Abort the in-flight statement `id` (its reply still arrives —
    /// result or typed `Cancelled` error; the race is inherent).
    Cancel {
        /// The statement to abort.
        id: u64,
    },
    /// The client said goodbye: abort everything still in flight; the
    /// connection closes once the write buffer drains.
    CancelAll,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Nothing but a valid `Hello` is acceptable.
    Handshake,
    /// Statements flow.
    Ready,
    /// Flush the write buffer, then drop.  No more reads.
    Closing,
}

/// See the [module docs](self).
#[derive(Debug)]
pub struct Conn {
    cfg: ConnConfig,
    session_id: u64,
    phase: Phase,
    reader: FrameReader,
    /// Outgoing bytes not yet written to the socket; `out_pos` marks the
    /// already-written prefix (compacted lazily).
    out: Vec<u8>,
    out_pos: usize,
    /// Statement ids awaiting replies, in submission order — the order
    /// replies MUST be flushed in.
    pending: VecDeque<u64>,
    /// Replies that completed out of order, parked until their turn.
    parked: HashMap<u64, Vec<u8>>,
    /// Prepared-statement handles, connection-scoped.
    statements: HashMap<u32, String>,
    next_statement: u32,
}

impl Conn {
    /// A fresh connection awaiting its handshake.
    pub fn new(session_id: u64, cfg: ConnConfig) -> Conn {
        Conn {
            reader: FrameReader::new(cfg.max_frame_len),
            cfg,
            session_id,
            phase: Phase::Handshake,
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            parked: HashMap::new(),
            statements: HashMap::new(),
            next_statement: 1,
        }
    }

    // -- input ----------------------------------------------------------

    /// Feed bytes read from the socket; returns the actions they imply.
    /// Equivalent to [`Conn::push_bytes`] + [`Conn::resume`].
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Vec<ConnEvent> {
        self.push_bytes(bytes);
        self.resume()
    }

    /// Buffer raw socket bytes without processing them.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.reader.push_bytes(bytes);
    }

    /// Process buffered frames up to the pipeline cap.  Called again by
    /// the reactor after completions drain the pipeline, so frames that
    /// arrived while the connection was backpressured are not stranded.
    pub fn resume(&mut self) -> Vec<ConnEvent> {
        let mut events = Vec::new();
        while self.phase != Phase::Closing && self.pending.len() < self.cfg.max_pipeline {
            match self.reader.next_frame() {
                Ok(Some(frame)) => self.handle_frame(frame, &mut events),
                Ok(None) => break,
                Err(e) => {
                    self.fail(e.0);
                    break;
                }
            }
        }
        events
    }

    fn handle_frame(&mut self, frame: Frame, events: &mut Vec<ConnEvent>) {
        match self.phase {
            Phase::Handshake => self.handle_handshake(frame),
            Phase::Ready => self.handle_ready(frame, events),
            Phase::Closing => {}
        }
    }

    fn handle_handshake(&mut self, frame: Frame) {
        let Frame::Hello {
            magic,
            min_version,
            max_version,
        } = frame
        else {
            self.fail(format!(
                "expected Hello as the first frame, got {}",
                frame_name(&frame)
            ));
            return;
        };
        if magic != MAGIC {
            self.fail(format!("bad magic 0x{magic:08x}"));
            return;
        }
        // Negotiate the highest version inside both ranges.
        let lo = VERSION_MIN.max(min_version);
        let hi = VERSION.min(max_version);
        if lo > hi {
            self.fail(format!(
                "no common protocol version (server speaks {VERSION_MIN}..={VERSION}, \
                 client asked {min_version}..={max_version})"
            ));
            return;
        }
        Frame::Welcome {
            version: hi,
            session_id: self.session_id,
        }
        .encode(&mut self.out);
        self.phase = Phase::Ready;
    }

    fn handle_ready(&mut self, frame: Frame, events: &mut Vec<ConnEvent>) {
        match frame {
            Frame::Query {
                id,
                deadline_ms,
                sql,
            } => {
                if self.begin_statement(id) {
                    events.push(ConnEvent::Submit {
                        id,
                        sql,
                        deadline_ms,
                    });
                }
            }
            Frame::Prepare { id, sql } => {
                if self.begin_statement(id) {
                    events.push(ConnEvent::Prepare { id, sql });
                }
            }
            Frame::ExecutePrepared {
                id,
                statement,
                deadline_ms,
            } => {
                if !self.begin_statement(id) {
                    return;
                }
                match self.statements.get(&statement).cloned() {
                    Some(sql) => events.push(ConnEvent::Submit {
                        id,
                        sql,
                        deadline_ms,
                    }),
                    None => {
                        // Answered locally, still in order.
                        let err = TcuError::InvalidArgument(format!(
                            "unknown prepared statement {statement}"
                        ));
                        self.complete(id, encode_error(id, &err));
                    }
                }
            }
            Frame::Cancel { id } => {
                // Only forward cancels for statements actually in flight;
                // a cancel racing its own completion is silently stale.
                if self.pending.contains(&id) && !self.parked.contains_key(&id) {
                    events.push(ConnEvent::Cancel { id });
                }
            }
            Frame::Goodbye { .. } => {
                events.push(ConnEvent::CancelAll);
                self.pending.clear();
                self.parked.clear();
                self.phase = Phase::Closing;
            }
            other => {
                self.fail(format!("client may not send {} frames", frame_name(&other)));
            }
        }
    }

    /// Register `id` as in flight; a duplicate id is a protocol error
    /// (replies would be ambiguous).
    fn begin_statement(&mut self, id: u64) -> bool {
        if self.pending.contains(&id) {
            self.fail(format!("statement id {id} is already in flight"));
            return false;
        }
        self.pending.push_back(id);
        true
    }

    // -- completions ----------------------------------------------------

    /// Deliver the encoded reply frames for statement `id`.  Replies are
    /// flushed to the write buffer strictly in submission order: an
    /// out-of-order completion is parked until every earlier statement
    /// has answered.
    pub fn complete(&mut self, id: u64, reply: Vec<u8>) {
        if self.phase == Phase::Closing || !self.pending.contains(&id) {
            // Late completion for a closed/cancelled statement: drop.
            return;
        }
        self.parked.insert(id, reply);
        while let Some(front) = self.pending.front().copied() {
            match self.parked.remove(&front) {
                Some(bytes) => {
                    self.out.extend_from_slice(&bytes);
                    self.pending.pop_front();
                }
                None => break,
            }
        }
    }

    /// Answer a [`ConnEvent::Prepare`]: on success the SQL is bound to a
    /// fresh connection-scoped handle and a `Prepared` frame replies;
    /// on failure the validation error replies, typed.
    pub fn finish_prepare(&mut self, id: u64, sql: String, result: Result<(), TcuError>) {
        match result {
            Ok(()) => {
                let statement = self.next_statement;
                self.next_statement = self.next_statement.wrapping_add(1);
                self.statements.insert(statement, sql);
                self.complete(id, Frame::Prepared { id, statement }.to_bytes());
            }
            Err(e) => self.complete(id, encode_error(id, &e)),
        }
    }

    // -- close paths ----------------------------------------------------

    /// Protocol violation: queue a typed [`ErrorCode::Protocol`] error
    /// frame (connection-level, `id == 0`, jumping ahead of any parked
    /// replies — the violation is fatal, the client learns immediately)
    /// and stop reading; the connection drops once the buffer drains.
    fn fail(&mut self, message: String) {
        Frame::Error {
            id: 0,
            code: ErrorCode::Protocol as u16,
            message,
        }
        .encode(&mut self.out);
        self.phase = Phase::Closing;
    }

    /// Server-initiated orderly close (idle timeout, shutdown): queue a
    /// `Goodbye` and stop reading.
    pub fn begin_close(&mut self, reason: &str) {
        if self.phase == Phase::Closing {
            return;
        }
        Frame::Goodbye {
            reason: reason.to_string(),
        }
        .encode(&mut self.out);
        self.phase = Phase::Closing;
    }

    // -- reactor-facing accounting --------------------------------------

    /// Should the reactor keep `EPOLLIN` interest?  False while closing,
    /// while the peer isn't draining replies (write backlog at or above
    /// the high watermark), or while the pipeline is full.
    pub fn wants_read(&self) -> bool {
        self.phase != Phase::Closing
            && self.buffered_out() < self.cfg.write_high_watermark
            && self.pending.len() < self.cfg.max_pipeline
    }

    /// Should the reactor keep `EPOLLOUT` interest?
    pub fn wants_write(&self) -> bool {
        self.buffered_out() > 0
    }

    /// The bytes awaiting a socket write.
    pub fn outgoing(&self) -> &[u8] {
        self.out.get(self.out_pos..).unwrap_or(&[])
    }

    /// Record that `n` outgoing bytes reached the socket.
    pub fn consume(&mut self, n: usize) {
        self.out_pos = (self.out_pos + n).min(self.out.len());
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 8192 && self.out_pos * 2 > self.out.len() {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    /// Undrained reply bytes.
    pub fn buffered_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// True once the connection is flushing out and must not be read.
    pub fn is_closing(&self) -> bool {
        self.phase == Phase::Closing
    }

    /// True when the connection can be dropped: closing and nothing left
    /// to flush.
    pub fn can_drop(&self) -> bool {
        self.phase == Phase::Closing && self.buffered_out() == 0
    }

    /// Statement ids still awaiting replies (for the reactor to cancel
    /// when the connection dies).
    pub fn in_flight(&self) -> Vec<u64> {
        self.pending.iter().copied().collect()
    }
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "Hello",
        Frame::Welcome { .. } => "Welcome",
        Frame::Query { .. } => "Query",
        Frame::Prepare { .. } => "Prepare",
        Frame::Prepared { .. } => "Prepared",
        Frame::ExecutePrepared { .. } => "ExecutePrepared",
        Frame::Cancel { .. } => "Cancel",
        Frame::ResultHeader { .. } => "ResultHeader",
        Frame::ResultBatch { .. } => "ResultBatch",
        Frame::ResultDone { .. } => "ResultDone",
        Frame::Error { .. } => "Error",
        Frame::Goodbye { .. } => "Goodbye",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> Vec<u8> {
        Frame::Hello {
            magic: MAGIC,
            min_version: VERSION_MIN,
            max_version: VERSION,
        }
        .to_bytes()
    }

    #[test]
    fn handshake_then_query_emits_submit() {
        let mut conn = Conn::new(7, ConnConfig::default());
        let events = conn.on_bytes(&hello());
        assert!(events.is_empty());
        // The Welcome reply is queued.
        let mut r = FrameReader::default();
        r.push_bytes(conn.outgoing());
        assert_eq!(
            r.next_frame().unwrap(),
            Some(Frame::Welcome {
                version: VERSION,
                session_id: 7
            })
        );
        let events = conn.on_bytes(
            &Frame::Query {
                id: 1,
                deadline_ms: 0,
                sql: "SELECT 1".into(),
            }
            .to_bytes(),
        );
        assert_eq!(
            events,
            vec![ConnEvent::Submit {
                id: 1,
                sql: "SELECT 1".into(),
                deadline_ms: 0
            }]
        );
    }

    #[test]
    fn query_before_hello_is_a_protocol_error() {
        let mut conn = Conn::new(1, ConnConfig::default());
        let events = conn.on_bytes(
            &Frame::Query {
                id: 1,
                deadline_ms: 0,
                sql: "SELECT 1".into(),
            }
            .to_bytes(),
        );
        assert!(events.is_empty());
        assert!(conn.is_closing());
        let mut r = FrameReader::default();
        r.push_bytes(conn.outgoing());
        match r.next_frame().unwrap() {
            Some(Frame::Error { id: 0, code, .. }) => {
                assert_eq!(ErrorCode::from_u16(code), ErrorCode::Protocol)
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut conn = Conn::new(1, ConnConfig::default());
        conn.on_bytes(
            &Frame::Hello {
                magic: MAGIC,
                min_version: VERSION + 1,
                max_version: VERSION + 9,
            }
            .to_bytes(),
        );
        assert!(conn.is_closing());
    }
}
