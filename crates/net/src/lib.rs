//! # tcudb-net
//!
//! The network front end for TCUDB: a binary wire protocol (TCUP), an
//! `epoll`-based reactor serving non-blocking connections over
//! `tcudb-serve`, a blocking client, and the `tcudb-server` binary.
//!
//! ```text
//!   Client ── TCUP frames ──▶ Reactor (1 thread, epoll) ──▶ Conn state machine
//!                                   │                            │ ConnEvent
//!                                   │ completions (eventfd)      ▼
//!                                   ◀── callback ── tcudb-serve worker pool
//! ```
//!
//! * [`frame`] — the TCUP protocol itself: `[len][crc32][payload]`
//!   framing (CRC-checked like the WAL), handshake/version negotiation,
//!   query / prepare / execute-prepared / cancel, columnar result-set
//!   streaming, typed error frames, and an incremental decoder that
//!   rejects garbage without panicking or over-allocating.
//! * [`conn`] — the pure per-connection state machine: pipelining with
//!   strictly-ordered replies, prepared-statement handles, write-buffer
//!   accounting and the backpressure signal.
//! * [`sys`] — the **only** unsafe module: thin wrappers over raw
//!   `epoll`/`eventfd` (no mio/tokio — the build is offline), audited by
//!   `tcudb-analyze` with a `// SAFETY:` comment on every block.
//! * [`reactor`] — [`NetServer`]: accept loop, level-triggered readiness,
//!   idle timeouts, and the bridge onto `tcudb-serve`'s admission /
//!   deadline / shed / cancel machinery via per-statement sessions.
//! * [`client`] — [`Client`]: the blocking client the tests and
//!   `perfserve --socket` use.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod reactor;
#[allow(unsafe_code)]
pub mod sys;

pub use client::Client;
pub use conn::{Conn, ConnConfig, ConnEvent};
pub use frame::{ErrorCode, Frame, FrameReader, ProtocolError, MAGIC, MAX_FRAME_LEN, VERSION};
pub use reactor::{NetConfig, NetServer, NetStats};
