//! The network reactor: one thread, one `epoll`, every connection.
//!
//! ```text
//!             ┌───────────────────────────── reactor thread ──┐
//!   accept ──▶│ epoll (level-triggered)                       │
//!   sockets ─▶│   readable ─▶ Conn::on_bytes ─▶ ConnEvents ───┼─▶ Session::submit_callback
//!             │   writable ─▶ flush write buffer              │         (serve worker pool)
//!   eventfd ─▶│   wake     ─▶ drain completion queue ─────────┼─◀ callback: push + signal
//!             └───────────────────────────────────────────────┘
//! ```
//!
//! The reactor never blocks on the engine and the engine never touches a
//! socket: a statement crosses from socket to serving layer as a
//! [`Session::submit_callback`] whose callback — running on the serve
//! worker that finished the query — pushes a `Completion` into a
//! mutex-protected queue and signals the reactor's `eventfd`.  The
//! reactor drains that queue, encodes the reply frames, and hands them to
//! the connection state machine, which releases them in submission order.
//!
//! Backpressure is wired end to end: while a connection's reply bytes
//! aren't draining (write backlog ≥ the high watermark) or its pipeline
//! is full, [`Conn::wants_read`] goes false and the reactor removes
//! `EPOLLIN` interest — the client's TCP window fills instead of server
//! memory.  Admission control and shedding stay where they were, in
//! `tcudb-serve`: an overloaded submission comes back synchronously as
//! [`TcuError::Overloaded`] and leaves as a typed error frame.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tcudb_core::{QueryOutput, TcuDb};
use tcudb_serve::{ServeConfig, Server, ServerStats, Session};
use tcudb_types::sync::locked;
use tcudb_types::{TcuError, TcuResult};

use crate::conn::{Conn, ConnConfig, ConnEvent};
use crate::frame::{encode_error, encode_result, BATCH_ROWS};
use crate::sys::{Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Network front-end configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address; port `0` picks a free one (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Connection cap: an accept beyond it is answered with a typed
    /// `Overloaded` error frame and closed.
    pub max_connections: usize,
    /// Close connections idle (no frame in either direction) this long;
    /// `None` never idles out.
    pub idle_timeout: Option<Duration>,
    /// Per-connection protocol tunables.
    pub conn: ConnConfig,
    /// The serving layer underneath (workers, admission, shedding,
    /// deadlines).
    pub serve: ServeConfig,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            idle_timeout: Some(Duration::from_secs(60)),
            conn: ConnConfig::default(),
            serve: ServeConfig::default(),
        }
    }
}

/// Counters describing the reactor since start.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the cap (answered `Overloaded`, closed).
    pub rejected: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Connections open right now.
    pub active: u64,
}

/// One finished statement travelling worker → reactor.
struct Completion {
    token: u64,
    id: u64,
    result: TcuResult<QueryOutput>,
}

struct NetShared {
    /// Completions queued for the reactor.
    // lint: leaf-lock held only for the push/drain itself, never while
    // calling into serve or the engine
    completions: Mutex<Vec<Completion>>,
    wake: EventFd,
    stop: AtomicBool,
    /// A crash-style stop (tests only): drop sockets without `Goodbye`
    /// frames and the serving layer without its shutdown checkpoint.
    kill: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    idle_closed: AtomicU64,
    active: AtomicU64,
}

/// A TCP front end over a [`Server`]: listener, reactor thread, and the
/// serving worker pool it feeds.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<NetShared>,
    reactor: Option<JoinHandle<ServerStats>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn io_err(context: &str, e: std::io::Error) -> TcuError {
    TcuError::Io(format!("{context}: {e}"))
}

impl NetServer {
    /// Bind, start the serving worker pool, and spawn the reactor.
    pub fn start(db: Arc<TcuDb>, config: NetConfig) -> TcuResult<NetServer> {
        let listener = TcpListener::bind(&config.addr).map_err(|e| io_err("bind listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("set listener non-blocking", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("read listener address", e))?;
        let server = Server::try_start(db, config.serve.clone())?;
        let epoll = Epoll::new().map_err(|e| io_err("epoll_create1", e))?;
        let wake = EventFd::new().map_err(|e| io_err("eventfd", e))?;
        let shared = Arc::new(NetShared {
            completions: Mutex::new(Vec::new()),
            wake,
            stop: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .map_err(|e| io_err("register listener", e))?;
        epoll
            .add(shared.wake.raw_fd(), EPOLLIN, TOKEN_WAKE)
            .map_err(|e| io_err("register wake eventfd", e))?;
        let reactor = Reactor {
            listener,
            epoll,
            shared: Arc::clone(&shared),
            server,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            config,
        };
        let handle = std::thread::Builder::new()
            .name("tcudb-net-reactor".to_string())
            .spawn(move || reactor.run())
            .map_err(|e| TcuError::Execution(format!("could not spawn the reactor: {e}")))?;
        Ok(NetServer {
            addr,
            shared,
            reactor: Some(handle),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Reactor counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            idle_closed: self.shared.idle_closed.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, close every connection with a `Goodbye`, drain the
    /// serving layer, and return its final counters.
    pub fn shutdown(mut self) -> TcuResult<ServerStats> {
        self.signal_stop();
        match self.reactor.take().map(JoinHandle::join) {
            Some(Ok(stats)) => Ok(stats),
            Some(Err(_)) => Err(TcuError::Execution("the reactor thread panicked".into())),
            None => Err(TcuError::Execution("the reactor was already joined".into())),
        }
    }

    /// SIGKILL-style stop for crash testing: connections are dropped with
    /// no `Goodbye`, in-flight queries are abandoned, and the serving
    /// layer is torn down **without** its graceful-shutdown checkpoint —
    /// exactly the disk state a real crash leaves, so recovery tests can
    /// drive the socket path through the WAL-replay machinery.
    pub fn kill(mut self) {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.signal_stop();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }

    fn signal_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.shared.wake.signal();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.signal_stop();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
    }
}

/// One live connection as the reactor sees it.
struct Handle {
    token: u64,
    stream: TcpStream,
    conn: Conn,
    /// One serve [`Session`] per in-flight statement, so a `Cancel`
    /// frame aborts exactly that statement.
    sessions: HashMap<u64, Session>,
    last_activity: Instant,
    interest: u32,
    /// Set on an unrecoverable socket error; the handle is dropped at
    /// the next [`Reactor::finish`].
    dead: bool,
}

struct Reactor {
    listener: TcpListener,
    epoll: Epoll,
    shared: Arc<NetShared>,
    server: Server,
    conns: HashMap<u64, Handle>,
    next_token: u64,
    config: NetConfig,
}

impl Reactor {
    fn run(mut self) -> ServerStats {
        let mut events = Vec::new();
        while !self.shared.stop.load(Ordering::SeqCst) {
            let timeout = self.poll_timeout_ms();
            let n = match self.epoll.wait(&mut events, 64, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            // Copy the ready list out so `self` is free to mutate.
            let ready: Vec<(u64, u32)> = events
                .iter()
                .take(n)
                .map(|e| ({ e.data }, { e.events }))
                .collect();
            for (token, mask) in ready {
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        let _ = self.shared.wake.drain();
                    }
                    _ => self.conn_ready(token, mask),
                }
            }
            self.drain_completions();
            self.sweep_idle();
        }
        if self.shared.kill.load(Ordering::SeqCst) {
            // Crash-style teardown: sockets die mid-stream (clients see
            // EOF, not Goodbye) and the serving layer is dropped without
            // its checkpoint — the WAL alone carries the state forward.
            let stats = self.server.stats();
            self.conns.clear();
            return stats;
        }
        // Orderly shutdown: tell every client, give the frames one
        // best-effort flush, then drop.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(mut h) = self.conns.remove(&token) {
                h.conn.begin_close("server shutting down");
                self.flush(&mut h);
                self.drop_handle(h);
            }
        }
        self.server.shutdown()
    }

    /// Sleep until the next idle deadline (or forever: completions and
    /// shutdown arrive via the wake eventfd).
    fn poll_timeout_ms(&self) -> i32 {
        let Some(idle) = self.config.idle_timeout else {
            return -1;
        };
        let now = Instant::now();
        self.conns
            .values()
            .map(|h| {
                let deadline = h.last_activity + idle;
                deadline.saturating_duration_since(now).as_millis() as i32
            })
            .min()
            .map(|ms| ms.clamp(10, 60_000))
            .unwrap_or(-1)
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        if self.conns.len() >= self.config.max_connections {
            // Refuse with a typed frame, best effort, and close.
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            let bytes = encode_error(
                0,
                &TcuError::Overloaded(format!(
                    "connection limit reached ({})",
                    self.config.max_connections
                )),
            );
            let _ = (&stream).write(&bytes);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
            .is_err()
        {
            return;
        }
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(
            token,
            Handle {
                token,
                stream,
                conn: Conn::new(token, self.config.conn.clone()),
                sessions: HashMap::new(),
                last_activity: Instant::now(),
                interest: EPOLLIN | EPOLLRDHUP,
                dead: false,
            },
        );
        self.shared
            .active
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn conn_ready(&mut self, token: u64, mask: u32) {
        let Some(mut h) = self.conns.remove(&token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
            h.dead = true;
        }
        if !h.dead && mask & EPOLLIN != 0 {
            self.read_ready(&mut h);
        }
        if !h.dead && mask & EPOLLOUT != 0 {
            self.flush(&mut h);
        }
        self.finish(h);
    }

    fn read_ready(&mut self, h: &mut Handle) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match h.stream.read(&mut buf) {
                Ok(0) => {
                    h.dead = true;
                    return;
                }
                Ok(n) => {
                    h.last_activity = Instant::now();
                    let events = h.conn.on_bytes(buf.get(..n).unwrap_or(&[]));
                    self.dispatch(h, events);
                    // Eagerly flush small replies (handshakes, sync
                    // errors) without waiting for an EPOLLOUT round trip.
                    self.flush(h);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    h.dead = true;
                    return;
                }
            }
            if !h.conn.wants_read() {
                // Backpressure: stop pulling; unread bytes stay in the
                // kernel buffer and, transitively, in the client's send
                // window.
                return;
            }
        }
    }

    fn dispatch(&mut self, h: &mut Handle, events: Vec<ConnEvent>) {
        for event in events {
            match event {
                ConnEvent::Submit {
                    id,
                    sql,
                    deadline_ms,
                } => {
                    let session = self.server.session();
                    let deadline =
                        (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms as u64));
                    let shared = Arc::clone(&self.shared);
                    let token = h.token;
                    let outcome = session.submit_callback(&sql, deadline, move |result| {
                        locked(&shared.completions).push(Completion { token, id, result });
                        let _ = shared.wake.signal();
                    });
                    match outcome {
                        Ok(()) => {
                            h.sessions.insert(id, session);
                        }
                        // Synchronous rejection (parse error, shed,
                        // shutdown): reply typed, right now, in order.
                        Err(e) => h.conn.complete(id, encode_error(id, &e)),
                    }
                }
                ConnEvent::Prepare { id, sql } => {
                    let snapshot = self.server.db().snapshot();
                    let result = self.server.db().prepare(&sql, &snapshot).map(|_| ());
                    h.conn.finish_prepare(id, sql, result);
                }
                ConnEvent::Cancel { id } => {
                    if let Some(session) = h.sessions.get(&id) {
                        session.cancel();
                    }
                }
                ConnEvent::CancelAll => {
                    for (_, session) in h.sessions.drain() {
                        session.cancel();
                    }
                }
            }
        }
    }

    fn drain_completions(&mut self) {
        loop {
            // Scope the guard: the queue is swapped out under the lock and
            // processed lock-free (dispatch may push new completions).
            let done = {
                let mut queue = locked(&self.shared.completions);
                std::mem::take(&mut *queue)
            };
            if done.is_empty() {
                return;
            }
            for c in done {
                let Some(mut h) = self.conns.remove(&c.token) else {
                    // The connection died while the query ran.
                    continue;
                };
                h.sessions.remove(&c.id);
                let bytes = match c.result {
                    Ok(out) => {
                        let mut b = Vec::new();
                        encode_result(c.id, &out.table, BATCH_ROWS, &mut b);
                        b
                    }
                    Err(e) => encode_error(c.id, &e),
                };
                h.conn.complete(c.id, bytes);
                // The pipeline has room again: frames buffered behind the
                // cap can now proceed.
                let events = h.conn.resume();
                self.dispatch(&mut h, events);
                self.flush(&mut h);
                self.finish(h);
            }
        }
    }

    fn flush(&mut self, h: &mut Handle) {
        while h.conn.wants_write() {
            match h.stream.write(h.conn.outgoing()) {
                Ok(0) => {
                    h.dead = true;
                    return;
                }
                Ok(n) => {
                    h.conn.consume(n);
                    h.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    h.dead = true;
                    return;
                }
            }
        }
    }

    /// Re-register or retire a handle after any activity.
    fn finish(&mut self, h: Handle) {
        if h.dead || h.conn.can_drop() {
            self.drop_handle(h);
            return;
        }
        let mut h = h;
        let mut desired = 0;
        if h.conn.wants_read() {
            desired |= EPOLLIN | EPOLLRDHUP;
        }
        if h.conn.wants_write() {
            desired |= EPOLLOUT;
        }
        if desired != h.interest
            && self
                .epoll
                .modify(h.stream.as_raw_fd(), desired, h.token)
                .is_ok()
        {
            h.interest = desired;
        }
        self.conns.insert(h.token, h);
        self.shared
            .active
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn drop_handle(&mut self, h: Handle) {
        let _ = self.epoll.delete(h.stream.as_raw_fd());
        // Statements still in flight lose their audience: cancel them so
        // they stop burning admission budget.
        for (_, session) in h.sessions {
            session.cancel();
        }
        self.shared
            .active
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn sweep_idle(&mut self) {
        let Some(idle) = self.config.idle_timeout else {
            return;
        };
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, h)| !h.conn.is_closing() && h.last_activity.elapsed() > idle)
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            let Some(mut h) = self.conns.remove(&token) else {
                continue;
            };
            self.shared.idle_closed.fetch_add(1, Ordering::Relaxed);
            h.conn.begin_close("idle timeout");
            self.flush(&mut h);
            self.finish(h);
        }
    }
}
