//! The TCUP wire protocol: CRC-framed, length-prefixed binary frames.
//!
//! Every frame on the wire is
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload = kind: u8 + body]
//! ```
//!
//! where `len` counts the payload bytes and the CRC32 (IEEE — the same
//! polynomial and implementation as the WAL, [`tcudb_storage::wal::crc32`])
//! covers the payload only.  A receiver rejects, with a typed
//! [`ProtocolError`] and never a panic or an unbounded allocation:
//!
//! * a length prefix above the negotiated maximum ([`MAX_FRAME_LEN`]) —
//!   detected from the 8 header bytes alone, before anything is buffered;
//! * a CRC mismatch (bit rot, torn writes, malicious garbage);
//! * a payload that decodes short, long, or structurally malformed
//!   (unknown frame kind, non-UTF-8 strings, column counts that cannot
//!   fit the remaining bytes).
//!
//! Decoding is *incremental*: [`FrameReader`] accepts arbitrary byte
//! slabs (network reads split frames anywhere) and yields complete frames
//! as they form.  All integers are little-endian; strings are
//! `u32` length + UTF-8 bytes; result sets stream as typed columnar
//! batches (`i64` / `f64` words, length-prefixed text) so a client can
//! reconstruct a byte-identical [`Table`].

use std::fmt;
use tcudb_storage::wal::crc32;
use tcudb_storage::{Column, ColumnDef, Schema, Table};
use tcudb_types::{DataType, TcuError, TcuResult};

/// First field of every [`Frame::Hello`]: `"TCUP"` as a big-endian word.
pub const MAGIC: u32 = 0x5443_5550;

/// Lowest protocol version this build can speak.
pub const VERSION_MIN: u16 = 1;

/// Highest (and preferred) protocol version this build can speak.
pub const VERSION: u16 = 1;

/// Hard ceiling on one frame's payload bytes.  An incoming length prefix
/// above this is rejected from the 8-byte header alone — the payload is
/// never buffered, so a hostile `0xFFFF_FFFF` prefix cannot balloon
/// memory.
pub const MAX_FRAME_LEN: u32 = 32 << 20;

/// Bytes of framing overhead preceding every payload (`len` + `crc`).
pub const HEADER_LEN: usize = 8;

/// Rows per [`Frame::ResultBatch`] when a server streams a result set.
pub const BATCH_ROWS: usize = 4096;

/// A violation of the wire protocol: bad magic, bad CRC, oversized or
/// malformed frames.  Fatal for the connection that produced it (the
/// peer's framing can no longer be trusted) but never for the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for TcuError {
    fn from(e: ProtocolError) -> TcuError {
        TcuError::InvalidArgument(e.to_string())
    }
}

/// Typed error codes carried by [`Frame::Error`] — one per [`TcuError`]
/// variant, plus [`ErrorCode::Protocol`] for framing violations, so a
/// client reconstructs the same error kind the engine produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`TcuError::Parse`].
    Parse = 1,
    /// [`TcuError::Analysis`].
    Analysis = 2,
    /// [`TcuError::Plan`].
    Plan = 3,
    /// [`TcuError::Execution`].
    Execution = 4,
    /// [`TcuError::PrecisionOverflow`].
    PrecisionOverflow = 5,
    /// [`TcuError::ShapeMismatch`] (flattened to its display text).
    ShapeMismatch = 6,
    /// [`TcuError::DeviceMemoryExceeded`] (flattened to its display text).
    DeviceMemoryExceeded = 7,
    /// [`TcuError::Io`].
    Io = 8,
    /// [`TcuError::IoTransient`].
    IoTransient = 9,
    /// [`TcuError::Cancelled`].
    Cancelled = 10,
    /// [`TcuError::DeadlineExceeded`].
    DeadlineExceeded = 11,
    /// [`TcuError::Overloaded`].
    Overloaded = 12,
    /// [`TcuError::InvalidArgument`].
    InvalidArgument = 13,
    /// A wire-protocol violation ([`ProtocolError`]); the connection is
    /// closed after this frame.
    Protocol = 100,
}

impl ErrorCode {
    /// Decode a wire code (unknown codes fall back to
    /// [`ErrorCode::Execution`] — a future peer may speak a newer
    /// taxonomy; the message still describes the failure).
    pub fn from_u16(code: u16) -> ErrorCode {
        match code {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Analysis,
            3 => ErrorCode::Plan,
            5 => ErrorCode::PrecisionOverflow,
            6 => ErrorCode::ShapeMismatch,
            7 => ErrorCode::DeviceMemoryExceeded,
            8 => ErrorCode::Io,
            9 => ErrorCode::IoTransient,
            10 => ErrorCode::Cancelled,
            11 => ErrorCode::DeadlineExceeded,
            12 => ErrorCode::Overloaded,
            13 => ErrorCode::InvalidArgument,
            100 => ErrorCode::Protocol,
            _ => ErrorCode::Execution,
        }
    }

    /// The `(code, message)` pair a server sends for an engine error.
    pub fn from_error(err: &TcuError) -> (ErrorCode, String) {
        match err {
            TcuError::Parse(m) => (ErrorCode::Parse, m.clone()),
            TcuError::Analysis(m) => (ErrorCode::Analysis, m.clone()),
            TcuError::Plan(m) => (ErrorCode::Plan, m.clone()),
            TcuError::Execution(m) => (ErrorCode::Execution, m.clone()),
            TcuError::PrecisionOverflow(m) => (ErrorCode::PrecisionOverflow, m.clone()),
            TcuError::ShapeMismatch { .. } => (ErrorCode::ShapeMismatch, err.to_string()),
            TcuError::DeviceMemoryExceeded { .. } => {
                (ErrorCode::DeviceMemoryExceeded, err.to_string())
            }
            TcuError::Io(m) => (ErrorCode::Io, m.clone()),
            TcuError::IoTransient(m) => (ErrorCode::IoTransient, m.clone()),
            TcuError::Cancelled(m) => (ErrorCode::Cancelled, m.clone()),
            TcuError::DeadlineExceeded(m) => (ErrorCode::DeadlineExceeded, m.clone()),
            TcuError::Overloaded(m) => (ErrorCode::Overloaded, m.clone()),
            TcuError::InvalidArgument(m) => (ErrorCode::InvalidArgument, m.clone()),
        }
    }

    /// Reconstruct the [`TcuError`] a client surfaces for this code.
    /// The two structured variants (shape mismatch, device memory) were
    /// flattened to text on encode and come back as
    /// [`TcuError::Execution`] carrying that text.
    pub fn to_error(self, message: String) -> TcuError {
        match self {
            ErrorCode::Parse => TcuError::Parse(message),
            ErrorCode::Analysis => TcuError::Analysis(message),
            ErrorCode::Plan => TcuError::Plan(message),
            ErrorCode::Execution | ErrorCode::ShapeMismatch | ErrorCode::DeviceMemoryExceeded => {
                TcuError::Execution(message)
            }
            ErrorCode::PrecisionOverflow => TcuError::PrecisionOverflow(message),
            ErrorCode::Io => TcuError::Io(message),
            ErrorCode::IoTransient => TcuError::IoTransient(message),
            ErrorCode::Cancelled => TcuError::Cancelled(message),
            ErrorCode::DeadlineExceeded => TcuError::DeadlineExceeded(message),
            ErrorCode::Overloaded => TcuError::Overloaded(message),
            ErrorCode::InvalidArgument => TcuError::InvalidArgument(message),
            ErrorCode::Protocol => TcuError::InvalidArgument(format!("protocol error: {message}")),
        }
    }
}

/// One decoded protocol frame.
///
/// Statement ids (`id`) are chosen by the client, must be unique among
/// its in-flight statements, and sequence the replies: a server answers
/// a connection's statements strictly in submission order, which is what
/// makes pipelining (N frames written before the first reply is read)
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on a connection: magic plus the
    /// closed version range the client speaks.
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// Lowest protocol version the client accepts.
        min_version: u16,
        /// Highest protocol version the client accepts.
        max_version: u16,
    },
    /// Server → client: the negotiated version and this connection's
    /// server-side session id (diagnostic; shows up in server stats).
    Welcome {
        /// The version both sides speak from here on.
        version: u16,
        /// Server-assigned connection id.
        session_id: u64,
    },
    /// Client → server: execute `sql`, reply under `id`.
    Query {
        /// Client-chosen statement id.
        id: u64,
        /// Per-statement deadline in milliseconds; `0` uses the server
        /// default.
        deadline_ms: u32,
        /// The SQL text.
        sql: String,
    },
    /// Client → server: parse/analyze `sql` once, binding it to a
    /// connection-scoped statement handle for later
    /// [`Frame::ExecutePrepared`].
    Prepare {
        /// Client-chosen statement id for the `Prepared` reply.
        id: u64,
        /// The SQL text.
        sql: String,
    },
    /// Server → client: the handle assigned by a successful prepare.
    Prepared {
        /// Echoes the `Prepare` id.
        id: u64,
        /// Connection-scoped statement handle.
        statement: u32,
    },
    /// Client → server: execute a prepared statement.
    ExecutePrepared {
        /// Client-chosen statement id.
        id: u64,
        /// Handle from a prior [`Frame::Prepared`].
        statement: u32,
        /// Per-statement deadline in milliseconds; `0` uses the server
        /// default.
        deadline_ms: u32,
    },
    /// Client → server: abort the in-flight statement `id`.  The reply
    /// for `id` still arrives — either its result (the race is inherent)
    /// or a typed [`ErrorCode::Cancelled`] error frame.
    Cancel {
        /// The statement to abort.
        id: u64,
    },
    /// Server → client: a result set begins — its table name and schema.
    ResultHeader {
        /// The statement this result answers.
        id: u64,
        /// Result table name (part of byte-identical reconstruction).
        name: String,
        /// `(column name, data type)` pairs in schema order.
        columns: Vec<(String, DataType)>,
    },
    /// Server → client: one columnar slab of result rows (at most
    /// [`BATCH_ROWS`] per frame), all columns over the same row range.
    ResultBatch {
        /// The statement this result answers.
        id: u64,
        /// The batch's columns, schema order, equal lengths.
        columns: Vec<Column>,
    },
    /// Server → client: the result set under `id` is complete.
    ResultDone {
        /// The statement this result answers.
        id: u64,
        /// Total rows streamed (across all batches).
        rows: u64,
    },
    /// Server → client: statement `id` failed (or, with `id == 0`, the
    /// connection itself — e.g. a protocol violation, after which the
    /// server closes).
    Error {
        /// The failed statement, `0` for connection-level errors.
        id: u64,
        /// Typed error code ([`ErrorCode`] as `u16`).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Either direction: orderly close (idle timeout, shutdown, client
    /// done).  No further frames follow from the sender.
    Goodbye {
        /// Why the sender is closing.
        reason: String,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_QUERY: u8 = 3;
const KIND_PREPARE: u8 = 4;
const KIND_PREPARED: u8 = 5;
const KIND_EXECUTE_PREPARED: u8 = 6;
const KIND_CANCEL: u8 = 7;
const KIND_RESULT_HEADER: u8 = 8;
const KIND_RESULT_BATCH: u8 = 9;
const KIND_RESULT_DONE: u8 = 10;
const KIND_ERROR: u8 = 11;
const KIND_GOODBYE: u8 = 12;

const TYPE_INT: u8 = 0;
const TYPE_FLOAT: u8 = 1;
const TYPE_TEXT: u8 = 2;

fn type_code(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => TYPE_INT,
        DataType::Float64 => TYPE_FLOAT,
        DataType::Text => TYPE_TEXT,
    }
}

fn type_from_code(code: u8) -> Result<DataType, ProtocolError> {
    match code {
        TYPE_INT => Ok(DataType::Int64),
        TYPE_FLOAT => Ok(DataType::Float64),
        TYPE_TEXT => Ok(DataType::Text),
        other => Err(ProtocolError(format!("unknown column type code {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Payload writer / reader
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            ProtocolError("length overflow while decoding frame payload".to_string())
        })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| ProtocolError("frame payload truncated".to_string()))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or_else(|| ProtocolError("frame payload truncated".to_string()))
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b
            .try_into()
            .map_err(|_| ProtocolError("frame payload truncated".to_string()))?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b
            .try_into()
            .map_err(|_| ProtocolError("frame payload truncated".to_string()))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| ProtocolError("frame payload truncated".to_string()))?;
        Ok(u64::from_le_bytes(arr))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(ProtocolError(format!(
                "string length {len} exceeds remaining payload {}",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtocolError("string is not valid UTF-8".to_string()))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError(format!(
                "{} trailing bytes after frame payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn encode_column(out: &mut Vec<u8>, col: &Column, lo: usize, hi: usize) {
    out.push(type_code(col.data_type()));
    put_u32(out, (hi - lo) as u32);
    match col {
        Column::Int64(v) => {
            for x in &v[lo..hi] {
                put_u64(out, *x as u64);
            }
        }
        Column::Float64(v) => {
            for x in &v[lo..hi] {
                put_u64(out, x.to_bits());
            }
        }
        Column::Text(v) => {
            for s in &v[lo..hi] {
                put_str(out, s);
            }
        }
    }
}

fn decode_column(r: &mut Reader<'_>) -> Result<Column, ProtocolError> {
    let dt = type_from_code(r.u8()?)?;
    let rows = r.u32()? as usize;
    // Every encoded element is at least 4 bytes (text length prefix) and
    // exactly 8 for numerics, so a row count beyond `remaining / 4`
    // cannot be satisfied — reject before allocating.
    if rows > r.remaining() / 4 {
        return Err(ProtocolError(format!(
            "column row count {rows} exceeds remaining payload {}",
            r.remaining()
        )));
    }
    match dt {
        DataType::Int64 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.i64()?);
            }
            Ok(Column::Int64(v))
        }
        DataType::Float64 => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.f64()?);
            }
            Ok(Column::Float64(v))
        }
        DataType::Text => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.str()?);
            }
            Ok(Column::Text(v))
        }
    }
}

impl Frame {
    /// Append this frame — header and CRC-protected payload — to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let header_at = out.len();
        out.extend_from_slice(&[0u8; HEADER_LEN]);
        let payload_at = out.len();
        self.encode_payload(out);
        let len = (out.len() - payload_at) as u32;
        let crc = crc32(&out[payload_at..]);
        out[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
        out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
    }

    /// This frame as a standalone byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello {
                magic,
                min_version,
                max_version,
            } => {
                out.push(KIND_HELLO);
                put_u32(out, *magic);
                put_u16(out, *min_version);
                put_u16(out, *max_version);
            }
            Frame::Welcome {
                version,
                session_id,
            } => {
                out.push(KIND_WELCOME);
                put_u16(out, *version);
                put_u64(out, *session_id);
            }
            Frame::Query {
                id,
                deadline_ms,
                sql,
            } => {
                out.push(KIND_QUERY);
                put_u64(out, *id);
                put_u32(out, *deadline_ms);
                put_str(out, sql);
            }
            Frame::Prepare { id, sql } => {
                out.push(KIND_PREPARE);
                put_u64(out, *id);
                put_str(out, sql);
            }
            Frame::Prepared { id, statement } => {
                out.push(KIND_PREPARED);
                put_u64(out, *id);
                put_u32(out, *statement);
            }
            Frame::ExecutePrepared {
                id,
                statement,
                deadline_ms,
            } => {
                out.push(KIND_EXECUTE_PREPARED);
                put_u64(out, *id);
                put_u32(out, *statement);
                put_u32(out, *deadline_ms);
            }
            Frame::Cancel { id } => {
                out.push(KIND_CANCEL);
                put_u64(out, *id);
            }
            Frame::ResultHeader { id, name, columns } => {
                out.push(KIND_RESULT_HEADER);
                put_u64(out, *id);
                put_str(out, name);
                put_u16(out, columns.len() as u16);
                for (col_name, dt) in columns {
                    put_str(out, col_name);
                    out.push(type_code(*dt));
                }
            }
            Frame::ResultBatch { id, columns } => {
                out.push(KIND_RESULT_BATCH);
                put_u64(out, *id);
                put_u16(out, columns.len() as u16);
                for col in columns {
                    encode_column(out, col, 0, col.len());
                }
            }
            Frame::ResultDone { id, rows } => {
                out.push(KIND_RESULT_DONE);
                put_u64(out, *id);
                put_u64(out, *rows);
            }
            Frame::Error { id, code, message } => {
                out.push(KIND_ERROR);
                put_u64(out, *id);
                put_u16(out, *code);
                put_str(out, message);
            }
            Frame::Goodbye { reason } => {
                out.push(KIND_GOODBYE);
                put_str(out, reason);
            }
        }
    }

    /// Decode one payload (the bytes after the 8-byte header, CRC already
    /// verified).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(payload);
        let kind = r.u8()?;
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                magic: r.u32()?,
                min_version: r.u16()?,
                max_version: r.u16()?,
            },
            KIND_WELCOME => Frame::Welcome {
                version: r.u16()?,
                session_id: r.u64()?,
            },
            KIND_QUERY => Frame::Query {
                id: r.u64()?,
                deadline_ms: r.u32()?,
                sql: r.str()?,
            },
            KIND_PREPARE => Frame::Prepare {
                id: r.u64()?,
                sql: r.str()?,
            },
            KIND_PREPARED => Frame::Prepared {
                id: r.u64()?,
                statement: r.u32()?,
            },
            KIND_EXECUTE_PREPARED => Frame::ExecutePrepared {
                id: r.u64()?,
                statement: r.u32()?,
                deadline_ms: r.u32()?,
            },
            KIND_CANCEL => Frame::Cancel { id: r.u64()? },
            KIND_RESULT_HEADER => {
                let id = r.u64()?;
                let name = r.str()?;
                let ncols = r.u16()? as usize;
                if ncols > r.remaining() {
                    return Err(ProtocolError(format!(
                        "header column count {ncols} exceeds remaining payload"
                    )));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    let col_name = r.str()?;
                    let dt = type_from_code(r.u8()?)?;
                    columns.push((col_name, dt));
                }
                Frame::ResultHeader { id, name, columns }
            }
            KIND_RESULT_BATCH => {
                let id = r.u64()?;
                let ncols = r.u16()? as usize;
                if ncols > r.remaining() {
                    return Err(ProtocolError(format!(
                        "batch column count {ncols} exceeds remaining payload"
                    )));
                }
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(decode_column(&mut r)?);
                }
                Frame::ResultBatch { id, columns }
            }
            KIND_RESULT_DONE => Frame::ResultDone {
                id: r.u64()?,
                rows: r.u64()?,
            },
            KIND_ERROR => Frame::Error {
                id: r.u64()?,
                code: r.u16()?,
                message: r.str()?,
            },
            KIND_GOODBYE => Frame::Goodbye { reason: r.str()? },
            other => return Err(ProtocolError(format!("unknown frame kind {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Encode a [`Frame::Error`] answering statement `id` with the typed
/// code for `err`.
pub fn encode_error(id: u64, err: &TcuError) -> Vec<u8> {
    let (code, message) = ErrorCode::from_error(err);
    Frame::Error {
        id,
        code: code as u16,
        message,
    }
    .to_bytes()
}

/// Encode a complete result set — header, columnar batches of at most
/// `batch_rows` rows, and the terminating [`Frame::ResultDone`] — into
/// `out`.
pub fn encode_result(id: u64, table: &Table, batch_rows: usize, out: &mut Vec<u8>) {
    let columns: Vec<(String, DataType)> = table
        .schema()
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.data_type))
        .collect();
    Frame::ResultHeader {
        id,
        name: table.name().to_string(),
        columns,
    }
    .encode(out);
    let rows = table.num_rows();
    let step = batch_rows.max(1);
    let mut lo = 0;
    while lo < rows {
        let hi = (lo + step).min(rows);
        let header_at = out.len();
        out.extend_from_slice(&[0u8; HEADER_LEN]);
        let payload_at = out.len();
        out.push(KIND_RESULT_BATCH);
        put_u64(out, id);
        put_u16(out, table.num_columns() as u16);
        for col in table.columns() {
            encode_column(out, col, lo, hi);
        }
        let len = (out.len() - payload_at) as u32;
        let crc = crc32(&out[payload_at..]);
        out[header_at..header_at + 4].copy_from_slice(&len.to_le_bytes());
        out[header_at + 4..header_at + 8].copy_from_slice(&crc.to_le_bytes());
        lo = hi;
    }
    Frame::ResultDone {
        id,
        rows: rows as u64,
    }
    .encode(out);
}

/// Reassembles a streamed result set (header + batches + done) back into
/// the [`Table`] the server executed — byte-identical to the in-process
/// result.
#[derive(Debug)]
pub struct ResultAssembler {
    name: String,
    schema: Vec<(String, DataType)>,
    columns: Vec<Column>,
}

impl ResultAssembler {
    /// Start assembling from a [`Frame::ResultHeader`].
    pub fn new(name: String, schema: Vec<(String, DataType)>) -> ResultAssembler {
        let columns = schema.iter().map(|(_, dt)| Column::empty(*dt)).collect();
        ResultAssembler {
            name,
            schema,
            columns,
        }
    }

    /// Append one [`Frame::ResultBatch`]'s columns.
    pub fn push_batch(&mut self, batch: Vec<Column>) -> Result<(), ProtocolError> {
        if batch.len() != self.columns.len() {
            return Err(ProtocolError(format!(
                "batch has {} columns, header declared {}",
                batch.len(),
                self.columns.len()
            )));
        }
        for (acc, part) in self.columns.iter_mut().zip(batch) {
            match (acc, part) {
                (Column::Int64(a), Column::Int64(b)) => a.extend(b),
                (Column::Float64(a), Column::Float64(b)) => a.extend(b),
                (Column::Text(a), Column::Text(b)) => a.extend(b),
                _ => {
                    return Err(ProtocolError(
                        "batch column type differs from header".to_string(),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Finish on [`Frame::ResultDone`], checking the streamed row count.
    pub fn finish(self, expected_rows: u64) -> TcuResult<Table> {
        let rows = self.columns.first().map(|c| c.len()).unwrap_or(0);
        if rows as u64 != expected_rows {
            return Err(ProtocolError(format!(
                "result stream carried {rows} rows, server declared {expected_rows}"
            ))
            .into());
        }
        let defs: Vec<ColumnDef> = self
            .schema
            .into_iter()
            .map(|(name, dt)| ColumnDef::new(name, dt))
            .collect();
        Table::from_columns(self.name, Schema::new(defs), self.columns)
    }
}

/// Incremental frame decoder: push network reads in, pull whole frames
/// out.  Errors are sticky — once the stream violates the protocol the
/// framing cannot be resynchronized, so every later call fails too.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
    poisoned: Option<ProtocolError>,
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader::new(MAX_FRAME_LEN)
    }
}

impl FrameReader {
    /// A reader enforcing `max_frame` as the payload-length ceiling.
    pub fn new(max_frame: u32) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// Buffer raw bytes from the transport.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_next() {
            Ok(f) => Ok(f),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<Frame>, ProtocolError> {
        let avail = &self.buf[self.start..];
        let Some(header) = avail.get(..HEADER_LEN) else {
            return Ok(None);
        };
        let len_bytes: [u8; 4] = header
            .get(..4)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(|| ProtocolError("short frame header".to_string()))?;
        let crc_bytes: [u8; 4] = header
            .get(4..8)
            .and_then(|b| b.try_into().ok())
            .ok_or_else(|| ProtocolError("short frame header".to_string()))?;
        let len = u32::from_le_bytes(len_bytes);
        let want_crc = u32::from_le_bytes(crc_bytes);
        if len == 0 {
            return Err(ProtocolError("zero-length frame".to_string()));
        }
        if len > self.max_frame {
            // Rejected from the header alone: the oversized payload is
            // never buffered or allocated.
            return Err(ProtocolError(format!(
                "frame length {len} exceeds the {max} byte limit",
                max = self.max_frame
            )));
        }
        let total = HEADER_LEN + len as usize;
        let Some(payload) = avail.get(HEADER_LEN..total) else {
            return Ok(None);
        };
        if crc32(payload) != want_crc {
            return Err(ProtocolError("frame CRC mismatch".to_string()));
        }
        let frame = Frame::decode_payload(payload)?;
        self.start += total;
        // Compact once the consumed prefix dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.to_bytes();
        let mut r = FrameReader::default();
        r.push_bytes(&bytes);
        assert_eq!(r.next_frame().unwrap(), Some(f));
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Hello {
            magic: MAGIC,
            min_version: 1,
            max_version: 3,
        });
        roundtrip(Frame::Welcome {
            version: 1,
            session_id: 42,
        });
        roundtrip(Frame::Query {
            id: 7,
            deadline_ms: 250,
            sql: "SELECT 1".to_string(),
        });
        roundtrip(Frame::Prepare {
            id: 8,
            sql: "SELECT A.x FROM A".to_string(),
        });
        roundtrip(Frame::Prepared {
            id: 8,
            statement: 3,
        });
        roundtrip(Frame::ExecutePrepared {
            id: 9,
            statement: 3,
            deadline_ms: 0,
        });
        roundtrip(Frame::Cancel { id: 9 });
        roundtrip(Frame::ResultHeader {
            id: 7,
            name: "result".to_string(),
            columns: vec![
                ("a".to_string(), DataType::Int64),
                ("b".to_string(), DataType::Float64),
                ("c".to_string(), DataType::Text),
            ],
        });
        roundtrip(Frame::ResultBatch {
            id: 7,
            columns: vec![
                Column::Int64(vec![1, -2, i64::MAX]),
                Column::Float64(vec![0.5, f64::INFINITY, f64::MIN_POSITIVE]),
                Column::Text(vec!["".to_string(), "héllo".to_string()]),
            ],
        });
        roundtrip(Frame::ResultDone { id: 7, rows: 3 });
        roundtrip(Frame::Error {
            id: 7,
            code: ErrorCode::Overloaded as u16,
            message: "queue full".to_string(),
        });
        roundtrip(Frame::Goodbye {
            reason: "idle".to_string(),
        });
    }

    #[test]
    fn partial_reads_split_anywhere_still_decode() {
        let mut bytes = Vec::new();
        Frame::Cancel { id: 5 }.encode(&mut bytes);
        Frame::Query {
            id: 6,
            deadline_ms: 0,
            sql: "SELECT 1".to_string(),
        }
        .encode(&mut bytes);
        for split in 0..bytes.len() {
            let mut r = FrameReader::default();
            r.push_bytes(&bytes[..split]);
            let mut got = Vec::new();
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
            r.push_bytes(&bytes[split..]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got.len(), 2, "split at {split}");
        }
    }

    #[test]
    fn corrupt_crc_is_rejected_and_sticky() {
        let mut bytes = Frame::Cancel { id: 5 }.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut r = FrameReader::default();
        r.push_bytes(&bytes);
        assert!(r.next_frame().is_err());
        // Sticky: even pushing a valid frame afterwards keeps failing.
        r.push_bytes(&Frame::Cancel { id: 6 }.to_bytes());
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_from_the_header() {
        let mut r = FrameReader::default();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        r.push_bytes(&bytes);
        let err = r.next_frame().unwrap_err();
        assert!(err.0.contains("exceeds"), "{err}");
        // Nothing beyond the 8 header bytes was ever required or buffered.
        assert_eq!(r.buffered(), 8);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        // Truncated: claim a Query but cut the SQL short.
        let good = Frame::Query {
            id: 1,
            deadline_ms: 0,
            sql: "SELECT 1".to_string(),
        }
        .to_bytes();
        let payload = &good[HEADER_LEN..good.len() - 2];
        assert!(Frame::decode_payload(payload).is_err());
        // Trailing: extra bytes after a complete payload.
        let mut long = good[HEADER_LEN..].to_vec();
        long.extend_from_slice(&[0, 0]);
        assert!(Frame::decode_payload(&long).is_err());
        // Unknown kind.
        assert!(Frame::decode_payload(&[200]).is_err());
    }

    #[test]
    fn hostile_row_counts_do_not_allocate() {
        // A batch claiming 2^31 rows in a 30-byte payload must fail fast.
        let mut payload = vec![KIND_RESULT_BATCH];
        put_u64(&mut payload, 1);
        put_u16(&mut payload, 1);
        payload.push(TYPE_INT);
        put_u32(&mut payload, u32::MAX);
        assert!(Frame::decode_payload(&payload).is_err());
    }

    #[test]
    fn result_encoding_reassembles_byte_identically() {
        let table = Table::from_columns(
            "result",
            Schema::from_pairs(&[
                ("id", DataType::Int64),
                ("score", DataType::Float64),
                ("tag", DataType::Text),
            ]),
            vec![
                Column::Int64((0..10_000).collect()),
                Column::Float64((0..10_000).map(|i| i as f64 * 0.25).collect()),
                Column::Text((0..10_000).map(|i| format!("tag-{i}")).collect()),
            ],
        )
        .unwrap();
        let mut bytes = Vec::new();
        encode_result(9, &table, 1024, &mut bytes);
        let mut r = FrameReader::default();
        r.push_bytes(&bytes);
        let mut asm = None;
        let mut rebuilt = None;
        let mut batches = 0;
        while let Some(f) = r.next_frame().unwrap() {
            match f {
                Frame::ResultHeader { name, columns, .. } => {
                    asm = Some(ResultAssembler::new(name, columns));
                }
                Frame::ResultBatch { columns, .. } => {
                    batches += 1;
                    asm.as_mut().unwrap().push_batch(columns).unwrap();
                }
                Frame::ResultDone { rows, .. } => {
                    rebuilt = Some(asm.take().unwrap().finish(rows).unwrap());
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(batches, 10);
        assert_eq!(rebuilt.unwrap(), table);
        // Empty result sets round-trip too (zero batches).
        let empty = Table::from_columns(
            "result",
            Schema::from_pairs(&[("id", DataType::Int64)]),
            vec![Column::Int64(vec![])],
        )
        .unwrap();
        let mut bytes = Vec::new();
        encode_result(1, &empty, 1024, &mut bytes);
        let mut r = FrameReader::default();
        r.push_bytes(&bytes);
        let mut asm = None;
        let mut rebuilt = None;
        while let Some(f) = r.next_frame().unwrap() {
            match f {
                Frame::ResultHeader { name, columns, .. } => {
                    asm = Some(ResultAssembler::new(name, columns));
                }
                Frame::ResultDone { rows, .. } => {
                    rebuilt = Some(asm.take().unwrap().finish(rows).unwrap());
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(rebuilt.unwrap(), empty);
    }

    #[test]
    fn error_codes_round_trip_tcu_errors() {
        let cases = vec![
            TcuError::Parse("p".into()),
            TcuError::Analysis("a".into()),
            TcuError::Plan("pl".into()),
            TcuError::Execution("e".into()),
            TcuError::PrecisionOverflow("po".into()),
            TcuError::Io("io".into()),
            TcuError::IoTransient("iot".into()),
            TcuError::Cancelled("c".into()),
            TcuError::DeadlineExceeded("d".into()),
            TcuError::Overloaded("o".into()),
            TcuError::InvalidArgument("i".into()),
        ];
        for err in cases {
            let (code, msg) = ErrorCode::from_error(&err);
            assert_eq!(code.to_error(msg), err);
        }
        // The structured variants flatten to Execution text.
        let shape = TcuError::ShapeMismatch {
            expected: "2x2".into(),
            got: "3x3".into(),
        };
        let (code, msg) = ErrorCode::from_error(&shape);
        assert_eq!(code, ErrorCode::ShapeMismatch);
        assert!(matches!(code.to_error(msg), TcuError::Execution(_)));
        assert_eq!(ErrorCode::from_u16(12), ErrorCode::Overloaded);
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Execution);
    }
}
