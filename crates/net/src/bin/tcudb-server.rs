//! `tcudb-server` — the TCUDB network server.
//!
//! Serves the TCUP wire protocol (see `tcudb_net::frame`) over TCP,
//! backed by the full serving stack: plan cache, in-flight coalescing,
//! admission control, deadlines, and load shedding.  Ships with the
//! demo catalogs (SSB star schema + microbenchmark join tables) so a
//! fresh checkout can serve traffic with no data pipeline:
//!
//! ```text
//! cargo run --release -p tcudb-net --bin tcudb-server -- --addr 127.0.0.1:4333
//! cargo run --release -p tcudb-net --bin tcudb-server -- --sf 2 --workers 8
//! ```
//!
//! Options: `--addr HOST:PORT` (default `127.0.0.1:4333`), `--sf N` (SSB
//! scale factor, default 1), `--workers N` (serve workers, default all
//! cores), `--deadline-ms N` (default per-query deadline, default none),
//! `--max-queue N` (shed bound, default 256), `--stats-secs N` (stats
//! print interval, default 30, `0` = quiet).  The process serves until
//! killed.

use std::sync::Arc;
use std::time::Duration;

use tcudb_core::TcuDb;
use tcudb_datagen::{micro, ssb};
use tcudb_net::{NetConfig, NetServer};
use tcudb_serve::ServeConfig;
use tcudb_storage::Catalog;

struct Options {
    addr: String,
    sf: usize,
    workers: usize,
    deadline_ms: u64,
    max_queue: usize,
    stats_secs: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:4333".to_string(),
        sf: 1,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        deadline_ms: 0,
        max_queue: 256,
        stats_secs: 30,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args.get(i).map(String::as_str).unwrap_or("");
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{arg} expects a value"))
        };
        match arg {
            "--addr" => {
                opts.addr = value(i)?.clone();
                i += 2;
            }
            "--sf" => {
                opts.sf = value(i)?.parse().map_err(|e| format!("--sf: {e}"))?;
                i += 2;
            }
            "--workers" => {
                opts.workers = value(i)?.parse().map_err(|e| format!("--workers: {e}"))?;
                i += 2;
            }
            "--deadline-ms" => {
                opts.deadline_ms = value(i)?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                i += 2;
            }
            "--max-queue" => {
                opts.max_queue = value(i)?.parse().map_err(|e| format!("--max-queue: {e}"))?;
                i += 2;
            }
            "--stats-secs" => {
                opts.stats_secs = value(i)?
                    .parse()
                    .map_err(|e| format!("--stats-secs: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

/// SSB + micro demo catalog (disjoint table names).
fn demo_catalog(sf: usize) -> Catalog {
    let ssb_cat = ssb::gen_catalog(sf, 0x55B);
    let micro_cat = micro::gen_catalog(&micro::MicroConfig::new(20_000, 4_096));
    let mut cat = Catalog::new();
    for source in [&ssb_cat, &micro_cat] {
        for name in source.table_names() {
            if let Ok(table) = source.table(&name) {
                cat.register((*table).clone());
            }
        }
    }
    cat
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    eprintln!(
        "tcudb-server: generating demo catalog (ssb sf={}, micro) ...",
        opts.sf
    );
    let db = Arc::new(TcuDb::default());
    db.set_catalog(demo_catalog(opts.sf));

    let config = NetConfig {
        addr: opts.addr.clone(),
        serve: ServeConfig {
            workers: opts.workers,
            max_queue: opts.max_queue,
            default_deadline: (opts.deadline_ms > 0)
                .then(|| Duration::from_millis(opts.deadline_ms)),
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    };
    let server = NetServer::start(db, config).map_err(|e| e.to_string())?;
    println!("tcudb-server: listening on {}", server.local_addr());

    // Serve until killed, periodically reporting reactor counters.
    loop {
        std::thread::sleep(Duration::from_secs(opts.stats_secs.max(1)));
        if opts.stats_secs > 0 {
            let s = server.stats();
            eprintln!(
                "tcudb-server: active={} accepted={} rejected={} idle_closed={}",
                s.active, s.accepted, s.rejected, s.idle_closed
            );
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("tcudb-server: {e}");
        std::process::exit(1);
    }
}
