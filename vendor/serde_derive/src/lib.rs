//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface of serde that TCUDB-RS actually uses:
//! `#[derive(Serialize, Deserialize)]` as marker-trait impls.  No code is
//! generated beyond the impls, and no `#[serde(...)]` attributes are
//! interpreted (the seed sources use none).

use proc_macro::{Delimiter, Ident, Span, TokenStream, TokenTree};

/// Extract the type name and a verbatim copy of its generics from the
/// tokens of a struct/enum definition.
fn parse_item(input: TokenStream) -> (Ident, TokenStream) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes, doc comments and visibility until `struct`/`enum`.
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id,
        _ => Ident::new("UnknownType", Span::call_site()),
    };
    // Capture `<...>` generics immediately following the name, if any.
    let mut generics = TokenStream::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in iter {
                let done = match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        false
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        depth == 0
                    }
                    _ => false,
                };
                generics.extend(std::iter::once(tt));
                if done {
                    break;
                }
            }
        }
    }
    (name, generics)
}

fn strip_bounds(generics: &TokenStream) -> TokenStream {
    // Turn `<T: Bound, 'a>` into `<T, 'a>` for the type position.
    let mut out = TokenStream::new();
    let mut skipping = false;
    let mut depth = 0i32;
    for tt in generics.clone() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                skipping = true;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => skipping = false,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    skipping = false;
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {}
            _ => {}
        }
        if !skipping {
            out.extend(std::iter::once(tt));
        }
    }
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let ty_generics = strip_bounds(&generics);
    format!(
        "impl {g} serde::Serialize for {name} {t} {{}}",
        g = generics,
        name = name,
        t = ty_generics,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let ty_generics = strip_bounds(&generics);
    // Merge the deserializer lifetime with the type's own generic
    // parameters (`<T>` becomes `<'de_stub, T>`).
    let g = generics.to_string();
    let impl_generics = match g.find('<') {
        Some(open) => format!("<'de_stub, {}", &g[open + 1..]),
        None => "<'de_stub>".to_string(),
    };
    format!(
        "impl {g} serde::Deserialize<'de_stub> for {name} {t} {{}}",
        g = impl_generics,
        name = name,
        t = ty_generics,
    )
    .parse()
    .unwrap()
}
