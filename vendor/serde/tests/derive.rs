//! The stub derives must compile for the shapes real serde handles:
//! plain structs, enums, and generic types.
#![allow(dead_code)] // types exist only to exercise the derives

use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Plain {
    a: i64,
    b: String,
}

#[derive(Serialize, Deserialize)]
enum Kind {
    A,
    B(u32),
}

#[derive(Serialize, Deserialize)]
struct Generic<T: Clone> {
    inner: T,
}

fn assert_serialize<T: Serialize>() {}
fn assert_deserialize<'de, T: Deserialize<'de>>() {}

#[test]
fn derives_cover_plain_enum_and_generic_types() {
    assert_serialize::<Plain>();
    assert_deserialize::<Plain>();
    assert_serialize::<Kind>();
    assert_deserialize::<Kind>();
    assert_serialize::<Generic<i32>>();
    assert_deserialize::<Generic<i32>>();
}
