//! Offline stub of `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface of serde that TCUDB-RS actually uses:
//! the `Serialize` / `Deserialize` marker traits and their derive macros.
//! Nothing is actually serialized anywhere in the seed; the derives exist
//! so downstream tooling can later swap in the real serde without touching
//! the annotated types.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
