//! Offline stub of `criterion`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal criterion API that the nine `fig*` benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.  It is a real (if simple) harness: each
//! benchmark runs a warm-up pass plus `sample_size` timed samples and
//! prints the mean, min and max wall-clock time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<48} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
        samples.len()
    );
}

/// Stub of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Override the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLE_SIZE),
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLE_SIZE),
            _parent: self,
        }
    }
}

/// Stub of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Close the group (reporting happens eagerly in this stub).
    pub fn finish(self) {}
}

/// Stub of `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Stub of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.sample_size(3).bench_function("stub_smoke", |b| {
            b.iter(|| runs += 1);
        });
        // one warm-up + three timed samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
    }
}
