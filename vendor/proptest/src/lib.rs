//! Offline stub of `proptest`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic re-implementation of the proptest API
//! surface that TCUDB-RS uses: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, [`test_runner::Config`] (`ProptestConfig`), numeric
//! range strategies, tuple strategies and `prop::collection::vec`.
//!
//! Unlike the real crate there is no shrinking and no failure persistence:
//! each `#[test]` simply runs `cases` deterministic random samples (seeded
//! from the test body's location so different tests see different data) and
//! panics on the first violated assertion, printing the generated inputs.

pub mod test_runner {
    /// Deterministic splitmix64 generator: good-enough statistical quality
    /// for test-case generation and fully reproducible across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Stand-in for `proptest::test_runner::Config` (aka `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type; the stub analogue of
    /// `proptest::strategy::Strategy` (sampling only — no value trees, no
    /// shrinking).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    // Casting/rounding can land exactly on the exclusive
                    // upper bound; keep the half-open contract.
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy yielding `Vec`s with lengths drawn from a size range; built
    /// by [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` path exposed by the real prelude
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declare deterministic property tests; stub of `proptest::proptest!`.
///
/// Supports the subset of the real grammar used in this workspace: an
/// optional leading `#![proptest_config(..)]`, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) ) => {};
    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Seed from the test's source location so each test draws a
            // distinct — but run-to-run stable — sample stream.
            let seed = {
                let loc = concat!(module_path!(), "::", stringify!($name));
                loc.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                })
            };
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for case in 0..config.cases {
                let inputs = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                );
                let inputs_desc = format!("{:?}", inputs);
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)+) = inputs;
                        $body
                    }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} failed for inputs {}",
                        case + 1,
                        config.cases,
                        inputs_desc,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Stub of `prop_assert!`: panics (no shrinking) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stub of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stub of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod self_tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5i64..7, y in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec((0i64..3, 1i64..9), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for (a, b) in v {
                prop_assert!((0..3).contains(&a));
                prop_assert!((1..9).contains(&b));
            }
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
